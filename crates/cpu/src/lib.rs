//! Trace-driven out-of-order core model.
//!
//! This reproduces the abstraction Ramulator's OoO frontend uses (and which
//! the paper's evaluation relies on, Section IV): each core retires up to
//! `width` instructions per core cycle from a `rob_entries`-deep instruction
//! window. Non-memory instructions complete in one cycle; memory
//! instructions are sent to a [`MemoryPort`] and occupy their window slot
//! until the port reports completion, so a full window stalls the core on
//! the oldest outstanding miss. Stores retire without waiting (write
//! buffering).
//!
//! Cores run at 4 GHz while the rest of the system runs on the 3.2 GHz
//! memory-bus clock; [`ClockRatio`] converts between the domains (5 core
//! cycles per 4 bus cycles).
//!
//! # Example
//!
//! ```
//! use cpu::{Core, MemoryPort, PortResponse, TraceEntry, TraceSource};
//! use sim_core::{AccessKind, PhysAddr, SourceId};
//!
//! struct FlatMemory;
//! impl MemoryPort for FlatMemory {
//!     fn access(&mut self, _s: SourceId, _a: PhysAddr, _k: AccessKind) -> PortResponse {
//!         PortResponse::Done { latency: 10 }
//!     }
//! }
//!
//! struct Stream;
//! impl TraceSource for Stream {
//!     fn next_entry(&mut self) -> TraceEntry {
//!         TraceEntry { bubbles: 3, addr: PhysAddr(0x1000), is_write: false }
//!     }
//! }
//!
//! let mut core = Core::new(SourceId(0), 4, 128, Box::new(Stream));
//! let mut mem = FlatMemory;
//! for _ in 0..100 {
//!     core.cycle(&mut mem);
//! }
//! assert!(core.retired() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::{HashMap, VecDeque};

use sim_core::addr::PhysAddr;
use sim_core::req::{AccessKind, SourceId};

/// One trace record: `bubbles` non-memory instructions followed by one
/// memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEntry {
    /// Non-memory instructions preceding the access.
    pub bubbles: u32,
    /// Physical address of the access.
    pub addr: PhysAddr,
    /// True for stores.
    pub is_write: bool,
}

/// An endless instruction stream feeding one core.
pub trait TraceSource {
    /// Produces the next record. Sources are infinite; runs are bounded by
    /// time or instruction count, never by trace exhaustion.
    fn next_entry(&mut self) -> TraceEntry;
}

/// Response of the memory hierarchy to a core access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PortResponse {
    /// Completed synchronously (cache hit / buffered store); the slot is
    /// ready after `latency` core cycles.
    Done {
        /// Completion latency in core cycles.
        latency: u32,
    },
    /// Outstanding (LLC miss sent to DRAM); completion arrives later via
    /// [`Core::complete`] using this id.
    Pending {
        /// Request id to be echoed on completion.
        req_id: u64,
    },
    /// The hierarchy cannot accept the request this cycle; retry.
    Busy,
}

/// The memory hierarchy as seen by a core.
pub trait MemoryPort {
    /// Issues an access on behalf of `source`.
    fn access(&mut self, source: SourceId, addr: PhysAddr, kind: AccessKind) -> PortResponse;
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Slot {
    DoneAt(u64),
    Pending,
}

/// How far a core can be advanced without simulating it cycle by cycle.
///
/// The time-skipping engine may only fast-forward a core through cycles
/// whose effect it can reproduce exactly. As long as the core neither
/// touches the memory port (enough staged bubbles remain) nor receives a
/// completion (the engine separately bounds skips by the controllers'
/// event horizon), its evolution is a short sequence of closed-form
/// phases — bubble streaks, waits on the window head, full-window stalls —
/// that [`Core::fast_forward`] replays without per-cycle work. A core
/// about to consult its trace or issue an access answers
/// [`Quiescence::Busy`] and forces dense stepping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Quiescence {
    /// The core may interact with the memory port on the very next cycle;
    /// it must be stepped densely.
    Busy,
    /// The core ends in a full window behind a pending memory request: it
    /// can absorb arbitrarily many cycles (bounded only by external
    /// events, since only a completion can unwedge it).
    Stalled,
    /// The core can be fast-forwarded exactly `cycles` core cycles without
    /// touching the memory port or its trace.
    Streaming {
        /// Exact number of fast-forwardable core cycles.
        cycles: u64,
    },
    /// The core has an access parked after a Busy answer and no staged
    /// bubbles: every coming cycle retries exactly that access and
    /// dispatches nothing else. **If** the engine can prove the port would
    /// keep answering Busy (the target queues cannot drain before its
    /// horizon) and no completion arrives, any number of cycles can be
    /// replayed in closed form with [`Core::port_blocked_forward`] —
    /// retire keeps draining ready window slots exactly as dense stepping
    /// would, and the Busy retries themselves are side-effect-free. This
    /// is the state saturated memory-bound cores live in, and what lets
    /// the time-skipping engine advance them between command-issue
    /// decision points instead of bus cycle by bus cycle.
    PortBlocked,
}

/// Accumulated effect of a virtual (no-memory) run over a core: shared by
/// the dry pass ([`Core::quiescence`]) and the applying pass
/// ([`Core::fast_forward`]) so both walk identical phase sequences.
#[derive(Debug, Default, Clone, Copy)]
struct NoMemRun {
    /// Core cycles consumed.
    cycles: u64,
    /// Window slots retired (oldest first: existing slots, then appended).
    popped: u64,
    /// Existing window slots among `popped`.
    popped_existing: usize,
    /// Bubble instructions dispatched (appended to the window back).
    appended: u64,
    /// Cycles in which nothing retired while the window was non-empty.
    stalls: u64,
    /// Window length at the end of the run.
    len: usize,
    /// Bubbles remaining.
    bubbles: u64,
    /// True when the run ended in the absorb-anything full-stall state.
    unbounded: bool,
}

/// Phase-iteration cap for the dry pass: every phase advances at least one
/// cycle, and realistic states settle in a handful of phases; the cap only
/// bounds pathological ready/blocked interleavings.
const MAX_NO_MEM_PHASES: u32 = 32;

/// A single trace-driven core.
pub struct Core {
    id: SourceId,
    width: u32,
    rob: usize,
    window: VecDeque<Slot>,
    head_seq: u64,
    next_seq: u64,
    pending: HashMap<u64, u64>,
    trace: Box<dyn TraceSource>,
    bubbles_left: u32,
    staged_access: Option<(PhysAddr, bool)>,
    /// Upper bound on every `DoneAt` time in the window (it survives pops,
    /// so it may be stale-high). With `pending` empty and `cycle >=
    /// max_done_at` the whole window is provably retireable, which unlocks
    /// the O(1) fast-forward fast path.
    max_done_at: u64,
    cycle: u64,
    retired: u64,
    mem_reads: u64,
    mem_writes: u64,
    stall_cycles: u64,
}

impl std::fmt::Debug for Core {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Core")
            .field("id", &self.id)
            .field("cycle", &self.cycle)
            .field("retired", &self.retired)
            .field("window", &self.window.len())
            .field("outstanding", &self.pending.len())
            .finish_non_exhaustive()
    }
}

impl Core {
    /// Creates a core with the given retire width and window size.
    ///
    /// # Panics
    ///
    /// Panics if `width` or `rob_entries` is zero.
    pub fn new(id: SourceId, width: u32, rob_entries: usize, trace: Box<dyn TraceSource>) -> Self {
        assert!(width > 0, "retire width must be positive");
        assert!(rob_entries > 0, "window must hold at least one instruction");
        Self {
            id,
            width,
            rob: rob_entries,
            window: VecDeque::with_capacity(rob_entries),
            head_seq: 0,
            next_seq: 0,
            pending: HashMap::new(),
            trace,
            bubbles_left: 0,
            staged_access: None,
            max_done_at: 0,
            cycle: 0,
            retired: 0,
            mem_reads: 0,
            mem_writes: 0,
            stall_cycles: 0,
        }
    }

    /// The core's source id.
    pub fn id(&self) -> SourceId {
        self.id
    }

    /// Instructions retired so far.
    pub fn retired(&self) -> u64 {
        self.retired
    }

    /// Core cycles elapsed.
    pub fn cycles(&self) -> u64 {
        self.cycle
    }

    /// Instructions per core cycle so far (0.0 before the first cycle).
    pub fn ipc(&self) -> f64 {
        if self.cycle == 0 {
            0.0
        } else {
            self.retired as f64 / self.cycle as f64
        }
    }

    /// (reads, writes) issued to the memory hierarchy.
    pub fn mem_accesses(&self) -> (u64, u64) {
        (self.mem_reads, self.mem_writes)
    }

    /// Cycles in which nothing retired.
    pub fn stall_cycles(&self) -> u64 {
        self.stall_cycles
    }

    /// Advances the core by one **core** cycle.
    pub fn cycle(&mut self, port: &mut dyn MemoryPort) {
        // Retire from the head.
        let mut retired_now = 0;
        while retired_now < self.width {
            match self.window.front() {
                Some(Slot::DoneAt(t)) if *t <= self.cycle => {
                    self.window.pop_front();
                    self.head_seq += 1;
                    self.retired += 1;
                    retired_now += 1;
                }
                _ => break,
            }
        }
        if retired_now == 0 && !self.window.is_empty() {
            self.stall_cycles += 1;
        }

        // Dispatch into the window.
        let mut dispatched = 0;
        while dispatched < self.width && self.window.len() < self.rob {
            if self.bubbles_left > 0 {
                self.bubbles_left -= 1;
                self.window.push_back(Slot::DoneAt(self.cycle + 1));
                self.max_done_at = self.max_done_at.max(self.cycle + 1);
                self.next_seq += 1;
                dispatched += 1;
                continue;
            }
            let (addr, is_write) = match self.staged_access.take() {
                Some(acc) => acc,
                None => {
                    let e = self.trace.next_entry();
                    if e.bubbles > 0 {
                        self.bubbles_left = e.bubbles;
                        self.staged_access = Some((e.addr, e.is_write));
                        continue;
                    }
                    (e.addr, e.is_write)
                }
            };
            let kind = if is_write { AccessKind::Write } else { AccessKind::Read };
            match port.access(self.id, addr, kind) {
                PortResponse::Busy => {
                    // Hierarchy full: park the access and stop dispatching.
                    self.staged_access = Some((addr, is_write));
                    break;
                }
                PortResponse::Done { latency } => {
                    if is_write {
                        self.mem_writes += 1;
                    } else {
                        self.mem_reads += 1;
                    }
                    self.window.push_back(Slot::DoneAt(self.cycle + latency as u64));
                    self.max_done_at = self.max_done_at.max(self.cycle + latency as u64);
                    self.next_seq += 1;
                    dispatched += 1;
                }
                PortResponse::Pending { req_id } => {
                    if is_write {
                        self.mem_writes += 1;
                    } else {
                        self.mem_reads += 1;
                    }
                    self.pending.insert(req_id, self.next_seq);
                    self.window.push_back(Slot::Pending);
                    self.next_seq += 1;
                    dispatched += 1;
                }
            }
        }

        self.cycle += 1;
    }

    /// Marks an outstanding request complete. Unknown ids are ignored
    /// (writes may complete after their slot retired in other models; ours
    /// only reports reads, so unknown ids indicate a harness bug in debug
    /// builds).
    pub fn complete(&mut self, req_id: u64) {
        if let Some(seq) = self.pending.remove(&req_id) {
            let idx = (seq - self.head_seq) as usize;
            debug_assert!(idx < self.window.len(), "completion for retired slot");
            if let Some(slot) = self.window.get_mut(idx) {
                debug_assert_eq!(*slot, Slot::Pending);
                *slot = Slot::DoneAt(self.cycle);
            }
        } else {
            debug_assert!(false, "completion for unknown request {req_id}");
        }
    }

    /// Number of window slots still waiting on memory.
    pub fn outstanding(&self) -> usize {
        self.pending.len()
    }

    /// Virtual execution of up to `limit` core cycles assuming the memory
    /// port is never touched and no completion arrives.
    ///
    /// The run advances in closed-form phases and stops early (leaving
    /// `cycles < limit`) as soon as the next cycle could consult the trace
    /// or issue an access — i.e. whenever dispatch would need a bubble the
    /// core does not have. Appended bubble slots are tracked by count only:
    /// a slot dispatched at virtual cycle `p` is retireable from `p + 1`
    /// on, which is always before the retire cursor can reach it, so only
    /// the count matters (survivors are materialized by `fast_forward`).
    fn no_mem_run(&self, limit: u64) -> NoMemRun {
        let width = self.width as usize;
        let mut r = NoMemRun {
            len: self.window.len(),
            bubbles: self.bubbles_left as u64,
            ..NoMemRun::default()
        };
        let mut vcycle = self.cycle;
        let mut phases = 0;
        while r.cycles < limit && phases < MAX_NO_MEM_PHASES {
            phases += 1;
            let budget = limit - r.cycles;
            // Ready prefix from the retire cursor: existing slots first
            // (ready iff completed by `vcycle`), then appended bubbles
            // (always ready by the time retire reaches them).
            let existing_left = self.window.len() - r.popped_existing;
            let appended_left = r.appended - (r.popped - r.popped_existing as u64);
            let mut prefix: u64 = 0;
            let mut head_pending = false;
            let mut head_wait: Option<u64> = None; // future DoneAt head
            for s in self.window.iter().skip(r.popped_existing) {
                match s {
                    Slot::DoneAt(t) if *t <= vcycle => prefix += 1,
                    Slot::DoneAt(t) => {
                        if prefix == 0 {
                            head_wait = Some(*t);
                        }
                        break;
                    }
                    Slot::Pending => {
                        if prefix == 0 {
                            head_pending = true;
                        }
                        break;
                    }
                }
            }
            if prefix == existing_left as u64 {
                prefix += appended_left;
            }

            if prefix == 0 && r.len > 0 {
                // Head blocked: pure stall, dispatch keeps filling the
                // window until it is full or the head releases.
                let room = self.rob - r.len;
                if room == 0 && head_pending {
                    r.unbounded = true;
                    r.stalls += budget;
                    r.cycles += budget;
                    return r;
                }
                let mut m = budget;
                if let Some(t) = head_wait {
                    m = m.min(t - vcycle);
                } else {
                    // Pending head: the wait has no deadline, but dispatch
                    // stops once the window fills, after which the state is
                    // the absorb-anything full stall — bound the phase so
                    // the loop reaches that classification.
                    m = m.min((room as u64).div_ceil(width as u64));
                }
                if room > 0 && (room as u64) > r.bubbles {
                    // Dispatch could exhaust the bubbles mid-phase; stay
                    // within the exactly-affordable cycle count.
                    m = m.min(r.bubbles / width as u64);
                    if m == 0 {
                        return r;
                    }
                }
                let pushed = (room as u64).min(m * width as u64);
                r.appended += pushed;
                r.bubbles -= pushed;
                r.len += pushed as usize;
                r.stalls += m;
                r.cycles += m;
                vcycle += m;
                continue;
            }

            if prefix >= width as u64 {
                // Steady drain: retire `width`, dispatch `width` per cycle
                // (after retiring there is always room); length invariant.
                // With the whole window ready the state is self-similar —
                // each cycle's appends rejoin the ready prefix — so only
                // the bubble supply bounds the phase; a mid-window blocker
                // instead caps it at the ready prefix.
                let mut m = budget.min(r.bubbles / width as u64);
                if prefix < r.len as u64 {
                    m = m.min(prefix / width as u64);
                }
                if m == 0 {
                    return r; // not enough bubbles for a full cycle
                }
                let insts = m * width as u64;
                let from_existing = (existing_left as u64).min(insts) as usize;
                r.popped += insts;
                r.popped_existing += from_existing;
                r.appended += insts;
                r.bubbles -= insts;
                r.cycles += m;
                vcycle += m;
                continue;
            }

            // Single exact cycle: partial retire (0 < prefix < width) or an
            // empty window warming up.
            let pops = prefix.min(width as u64);
            let len_after = r.len - pops as usize;
            let d = width.min(self.rob - len_after);
            if (d as u64) > r.bubbles {
                return r; // dispatch would reach the trace/port
            }
            let from_existing = (existing_left as u64).min(pops) as usize;
            r.popped += pops;
            r.popped_existing += from_existing;
            r.appended += d as u64;
            r.bubbles -= d as u64;
            r.len = len_after + d;
            if pops == 0 && r.len > 0 && len_after > 0 {
                r.stalls += 1; // retire idled with a non-empty window
            }
            r.cycles += 1;
            vcycle += 1;
        }
        r
    }

    /// Reports how many core cycles can be skipped without changing any
    /// observable behaviour relative to dense stepping (see [`Quiescence`]).
    ///
    /// The answer is exact, not a heuristic: [`Core::fast_forward`] through
    /// at most this many cycles produces bit-identical retire/stall/cycle
    /// counters and a behaviourally equivalent window.
    pub fn quiescence(&self) -> Quiescence {
        // O(1) first: an access parked with no staged bubbles means every
        // coming cycle is retire-plus-one-port-retry, whatever the window
        // holds — if the port provably keeps refusing, any horizon replays
        // in closed form, so no budget and no phase walk are needed. The
        // engine validates the refusal; when the port might accept it
        // falls back to [`Core::quiescence_unparked`].
        if self.is_port_blocked() {
            return Quiescence::PortBlocked;
        }
        self.quiescence_unparked()
    }

    /// O(1): true when the core sits in the [`Quiescence::PortBlocked`]
    /// state (an access parked behind a Busy answer with no staged
    /// bubbles). Engines poll this every cycle when deciding whether a
    /// core can be frozen, so it must not walk the window.
    pub fn is_port_blocked(&self) -> bool {
        self.staged_access.is_some() && self.bubbles_left == 0
    }

    /// O(1): true when the window is full behind a pending head — the
    /// [`Quiescence::Stalled`] shape. Nothing but a completion can change
    /// the core's state from here (the full window fences dispatch off
    /// entirely), so an engine may freeze such a core with no standing
    /// condition at all and replay the elided span as pure stall cycles.
    pub fn is_fully_stalled(&self) -> bool {
        self.window.len() == self.rob && matches!(self.window.front(), Some(Slot::Pending))
    }

    /// [`Core::quiescence`] without the port-blocked short-circuit: how
    /// far the core can go *never touching the port at all*. This is the
    /// valid classification when a parked access might be accepted (the
    /// engine could not prove the port stays Busy); a parked core that
    /// cannot even reach its next dispatch attempt may still stream or
    /// stall for a bounded stretch.
    pub fn quiescence_unparked(&self) -> Quiescence {
        // O(1) Busy detection: out of bubbles with nothing parked and room
        // to dispatch means the very next cycle consults the trace (retire
        // only shrinks the window, so dispatch cannot be fenced off).
        // Actively-running cores answer here, which keeps failed skip
        // probes on saturated-but-churning phases cheap.
        if self.bubbles_left == 0 && self.staged_access.is_none() && self.window.len() < self.rob {
            return Quiescence::Busy;
        }
        // Fast path: whole window retireable and enough bubbles for at
        // least one full-width cycle — the steady drain needs no phase
        // walk; its horizon is purely bubble-bounded.
        if self.whole_window_ready() && self.window.len() >= self.width as usize {
            let cycles = (self.bubbles_left / self.width) as u64;
            if cycles > 0 {
                return Quiescence::Streaming { cycles };
            }
        }
        let r = self.no_mem_run(u64::MAX);
        if r.unbounded {
            Quiescence::Stalled
        } else if r.cycles == 0 {
            Quiescence::Busy
        } else {
            Quiescence::Streaming { cycles: r.cycles }
        }
    }

    /// The access a [`Quiescence::PortBlocked`] core retries every cycle:
    /// `(address, is_write)`. `None` unless an access is parked with no
    /// staged bubbles ahead of it.
    pub fn blocked_access(&self) -> Option<(PhysAddr, bool)> {
        if self.bubbles_left == 0 {
            self.staged_access
        } else {
            None
        }
    }

    /// Advances a [`Quiescence::PortBlocked`] core `n` core cycles in
    /// closed form, assuming every retry of the parked access answers Busy
    /// and no completion arrives — the caller must have proven both (queue
    /// state frozen through its horizon). The effect is exactly that of
    /// `n` dense [`Core::cycle`] calls: ready window slots retire oldest
    /// first at up to `width` per cycle, stall cycles accrue while the
    /// head is blocked, and the Busy retries touch nothing.
    pub fn port_blocked_forward(&mut self, n: u64) {
        debug_assert!(
            self.is_port_blocked() || self.is_fully_stalled(),
            "port_blocked_forward outside the port-blocked/fully-stalled states"
        );
        let mut left = n;
        while left > 0 {
            match self.window.front() {
                None => {
                    // Empty window: nothing retires, nothing stalls (the
                    // stall counter only runs against a non-empty window).
                    self.cycle += left;
                    break;
                }
                Some(Slot::Pending) => {
                    // Only a completion could unwedge the head, and none
                    // arrives within the caller's horizon.
                    self.stall_cycles += left;
                    self.cycle += left;
                    break;
                }
                Some(Slot::DoneAt(t)) if *t > self.cycle => {
                    // Head completes at a known future cycle: stall up to
                    // it in one jump.
                    let m = (*t - self.cycle).min(left);
                    self.stall_cycles += m;
                    self.cycle += m;
                    left -= m;
                }
                Some(Slot::DoneAt(_)) => {
                    // Ready head: replay one dense retire cycle (at most
                    // `width` pops), then reclassify — slots further back
                    // may become ready as the clock advances.
                    let mut retired_now = 0;
                    while retired_now < self.width {
                        match self.window.front() {
                            Some(Slot::DoneAt(t)) if *t <= self.cycle => {
                                self.window.pop_front();
                                self.head_seq += 1;
                                self.retired += 1;
                                retired_now += 1;
                            }
                            _ => break,
                        }
                    }
                    self.cycle += 1;
                    left -= 1;
                }
            }
        }
    }

    /// True when every window slot is provably retireable right now (O(1)
    /// via the `max_done_at` bound; may conservatively answer false).
    fn whole_window_ready(&self) -> bool {
        self.pending.is_empty() && self.cycle >= self.max_done_at
    }

    /// Advances the core `n` core cycles in closed form.
    ///
    /// Must only be called with `n` within the bound last reported by
    /// [`Core::quiescence`] (and with no intervening mutation); the effect
    /// is then exactly that of `n` calls to [`Core::cycle`] during which
    /// the memory port is never touched and no completion arrives.
    pub fn fast_forward(&mut self, n: u64) {
        if n == 0 {
            return;
        }
        // Fast path mirroring `quiescence`'s: a steady drain retires and
        // dispatches exactly `width` per cycle, leaving the window length
        // unchanged and every slot still retireable — and since retire
        // only tests `t <= cycle` against a non-decreasing clock, the
        // existing (already retireable) slots can simply stand in for the
        // freshly dispatched ones. Pure scalar updates, no window churn.
        let insts = n * self.width as u64;
        if self.whole_window_ready()
            && self.window.len() >= self.width as usize
            && insts <= self.bubbles_left as u64
        {
            self.cycle += n;
            self.retired += insts;
            self.head_seq += insts;
            self.next_seq += insts;
            self.bubbles_left -= insts as u32;
            return;
        }
        let r = self.no_mem_run(n);
        debug_assert_eq!(r.cycles, n, "fast_forward past the quiescent horizon");
        self.cycle += r.cycles;
        self.stall_cycles += r.stalls;
        self.retired += r.popped;
        self.head_seq += r.popped;
        self.next_seq += r.appended;
        self.bubbles_left -= r.appended as u32;
        if r.popped_existing == self.window.len() {
            // Every original slot retired: the survivors are all appended
            // bubbles, ready at the final cycle.
            self.window.clear();
            self.window.resize(r.len, Slot::DoneAt(self.cycle));
        } else {
            for _ in 0..r.popped_existing {
                self.window.pop_front();
            }
            // Surviving appended bubbles: dispatched at some cycle `p`
            // within the run, retireable from `p + 1 <= self.cycle`;
            // stamping them with the final cycle is behaviourally
            // identical.
            let appended_popped = r.popped - r.popped_existing as u64;
            for _ in 0..(r.appended - appended_popped) {
                self.window.push_back(Slot::DoneAt(self.cycle));
            }
        }
        self.max_done_at = self.max_done_at.max(self.cycle);
        debug_assert_eq!(self.window.len(), r.len);
        debug_assert_eq!(self.bubbles_left as u64, r.bubbles);
    }
}

/// Converts bus cycles (3.2 GHz) into core cycles (4 GHz): five core cycles
/// per four bus cycles.
///
/// # Example
///
/// ```
/// use cpu::ClockRatio;
///
/// let mut r = ClockRatio::core_over_bus();
/// let total: u32 = (0..4).map(|_| r.core_cycles_for_bus_cycle()).sum();
/// assert_eq!(total, 5);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct ClockRatio {
    acc: u32,
}

impl ClockRatio {
    /// The 4 GHz-over-3.2 GHz ratio used by the baseline system.
    pub fn core_over_bus() -> Self {
        Self { acc: 0 }
    }

    /// Total core cycles emitted for the first `bus` bus cycles of a run
    /// (phase starting at zero): the per-cycle recurrence conserves
    /// `acc + 4 * emitted = 5 * bus`, so the sum telescopes to
    /// `floor(5 * bus / 4)`. Closed-form and path-independent — engines
    /// use it to replay a frozen component's span `[a, b)` as
    /// `at(b) - at(a)` without sharing ratio state.
    pub fn cumulative_core_cycles(bus: u64) -> u64 {
        5 * bus / 4
    }

    /// Core cycles to run for the next bus cycle (1 or 2; averages 1.25).
    pub fn core_cycles_for_bus_cycle(&mut self) -> u32 {
        self.acc += 5;
        let n = self.acc / 4;
        self.acc %= 4;
        n
    }

    /// Largest number of bus cycles whose core-cycle total stays within
    /// `core_budget`, from the current phase. Pure query; the phase is
    /// unchanged.
    pub fn max_bus_cycles_within(&self, core_budget: u64) -> u64 {
        // Over k bus cycles the emitted core-cycle total is
        // (acc + 5k) div 4 (each step conserves acc + 4 * emitted), so we
        // need acc + 5k <= 4 * budget + 3.
        core_budget.saturating_mul(4).saturating_add(3 - self.acc as u64) / 5
    }

    /// Advances the phase by `bus_cycles` at once, returning the exact
    /// total of core cycles the dense per-cycle sequence would emit.
    pub fn advance_bus_cycles(&mut self, bus_cycles: u64) -> u64 {
        let total = self.acc as u64 + 5 * bus_cycles;
        self.acc = (total % 4) as u32;
        total / 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct FixedLatency(u32);
    impl MemoryPort for FixedLatency {
        fn access(&mut self, _s: SourceId, _a: PhysAddr, _k: AccessKind) -> PortResponse {
            PortResponse::Done { latency: self.0 }
        }
    }

    struct NeverReady;
    impl MemoryPort for NeverReady {
        fn access(&mut self, _s: SourceId, _a: PhysAddr, _k: AccessKind) -> PortResponse {
            PortResponse::Busy
        }
    }

    struct PendingPort {
        next_id: u64,
        issued: Vec<u64>,
    }
    impl MemoryPort for PendingPort {
        fn access(&mut self, _s: SourceId, _a: PhysAddr, _k: AccessKind) -> PortResponse {
            self.next_id += 1;
            self.issued.push(self.next_id);
            PortResponse::Pending { req_id: self.next_id }
        }
    }

    struct Bubbles(u32);
    impl TraceSource for Bubbles {
        fn next_entry(&mut self) -> TraceEntry {
            TraceEntry { bubbles: self.0, addr: PhysAddr(64), is_write: false }
        }
    }

    #[test]
    fn ideal_ipc_approaches_width() {
        // With huge bubble counts and 1-cycle memory, IPC ~ width.
        let mut core = Core::new(SourceId(0), 4, 128, Box::new(Bubbles(1000)));
        let mut mem = FixedLatency(1);
        for _ in 0..1000 {
            core.cycle(&mut mem);
        }
        let ipc = core.ipc();
        assert!(ipc > 3.5, "ipc = {ipc}");
    }

    #[test]
    fn memory_latency_throttles_ipc() {
        let mut fast = Core::new(SourceId(0), 4, 8, Box::new(Bubbles(0)));
        let mut slow = Core::new(SourceId(0), 4, 8, Box::new(Bubbles(0)));
        let mut m_fast = FixedLatency(1);
        let mut m_slow = FixedLatency(100);
        for _ in 0..2000 {
            fast.cycle(&mut m_fast);
            slow.cycle(&mut m_slow);
        }
        assert!(slow.ipc() < fast.ipc() / 4.0, "{} vs {}", slow.ipc(), fast.ipc());
    }

    #[test]
    fn busy_port_stalls_dispatch_entirely() {
        let mut core = Core::new(SourceId(0), 4, 16, Box::new(Bubbles(0)));
        let mut mem = NeverReady;
        for _ in 0..100 {
            core.cycle(&mut mem);
        }
        assert_eq!(core.retired(), 0);
        let (r, w) = core.mem_accesses();
        assert_eq!(r + w, 0);
    }

    #[test]
    fn window_bounds_outstanding_misses() {
        let mut core = Core::new(SourceId(0), 4, 16, Box::new(Bubbles(0)));
        let mut mem = PendingPort { next_id: 0, issued: vec![] };
        for _ in 0..100 {
            core.cycle(&mut mem);
        }
        assert!(core.outstanding() <= 16);
        assert_eq!(core.outstanding(), 16, "window should fill with misses");
        assert_eq!(core.retired(), 0);
    }

    #[test]
    fn completion_unblocks_retire_in_order() {
        let mut core = Core::new(SourceId(0), 1, 4, Box::new(Bubbles(0)));
        let mut mem = PendingPort { next_id: 0, issued: vec![] };
        for _ in 0..10 {
            core.cycle(&mut mem);
        }
        assert_eq!(core.retired(), 0);
        let first = mem.issued[0];
        let second = mem.issued[1];
        // Complete out of order: second first.
        core.complete(second);
        core.cycle(&mut mem);
        assert_eq!(core.retired(), 0, "head still pending; retire is in-order");
        core.complete(first);
        core.cycle(&mut mem);
        core.cycle(&mut mem);
        assert!(core.retired() >= 2, "both slots retire once head completes");
    }

    #[test]
    fn stores_count_separately() {
        struct Stores;
        impl TraceSource for Stores {
            fn next_entry(&mut self) -> TraceEntry {
                TraceEntry { bubbles: 0, addr: PhysAddr(0), is_write: true }
            }
        }
        let mut core = Core::new(SourceId(1), 2, 8, Box::new(Stores));
        let mut mem = FixedLatency(1);
        for _ in 0..50 {
            core.cycle(&mut mem);
        }
        let (r, w) = core.mem_accesses();
        assert_eq!(r, 0);
        assert!(w > 0);
    }

    #[test]
    fn clock_ratio_five_over_four() {
        let mut r = ClockRatio::core_over_bus();
        let seq: Vec<u32> = (0..8).map(|_| r.core_cycles_for_bus_cycle()).collect();
        assert_eq!(seq.iter().sum::<u32>(), 10, "{seq:?}");
        assert!(seq.iter().all(|&c| c == 1 || c == 2));
    }

    #[test]
    fn clock_ratio_cumulative_matches_the_recurrence() {
        let mut r = ClockRatio::core_over_bus();
        let mut emitted = 0u64;
        for bus in 0..100u64 {
            assert_eq!(ClockRatio::cumulative_core_cycles(bus), emitted, "bus {bus}");
            emitted += r.core_cycles_for_bus_cycle() as u64;
        }
    }

    #[test]
    fn clock_ratio_batch_matches_dense_sequence() {
        for lead in 0..7u64 {
            for k in 0..23u64 {
                let mut dense = ClockRatio::core_over_bus();
                let mut batch = ClockRatio::core_over_bus();
                for _ in 0..lead {
                    dense.core_cycles_for_bus_cycle();
                    batch.core_cycles_for_bus_cycle();
                }
                let want: u64 = (0..k).map(|_| dense.core_cycles_for_bus_cycle() as u64).sum();
                assert!(batch.max_bus_cycles_within(want) >= k, "lead {lead} k {k}");
                assert_eq!(batch.advance_bus_cycles(k), want, "lead {lead} k {k}");
                // Both must land in the same phase.
                assert_eq!(
                    dense.core_cycles_for_bus_cycle(),
                    batch.core_cycles_for_bus_cycle(),
                    "phase diverged at lead {lead} k {k}"
                );
            }
        }
    }

    #[test]
    fn clock_ratio_budget_is_tight() {
        let r = ClockRatio::core_over_bus();
        let k = r.max_bus_cycles_within(10);
        let mut probe = ClockRatio::core_over_bus();
        assert!(probe.advance_bus_cycles(k) <= 10);
        let mut over = ClockRatio::core_over_bus();
        assert!(over.advance_bus_cycles(k + 1) > 10, "budget not maximal");
        // An unbounded budget must not overflow.
        assert!(r.max_bus_cycles_within(u64::MAX) > 1 << 60);
    }

    /// Runs `core.cycle` densely with a port that must never be touched.
    struct UnreachablePort;
    impl MemoryPort for UnreachablePort {
        fn access(&mut self, _s: SourceId, _a: PhysAddr, _k: AccessKind) -> PortResponse {
            panic!("quiescent core touched the memory port");
        }
    }

    fn snapshot(c: &Core) -> (u64, u64, u64, u64, u64, usize) {
        (c.retired, c.cycle, c.stall_cycles, c.head_seq, c.next_seq, c.window.len())
    }

    #[test]
    fn fast_forward_matches_dense_bubble_streak() {
        // Prime two identical cores into a bubble streak, then advance one
        // densely and one in closed form; every counter must agree.
        let mk = || Core::new(SourceId(0), 4, 32, Box::new(Bubbles(10_000)));
        let mut dense = mk();
        let mut skip = mk();
        let mut warm = FixedLatency(1);
        for _ in 0..5 {
            dense.cycle(&mut warm);
            skip.cycle(&mut warm);
        }
        let q = skip.quiescence();
        let Quiescence::Streaming { cycles } = q else { panic!("expected streak, got {q:?}") };
        assert!(cycles > 100);
        let n = cycles.min(200);
        let mut port = UnreachablePort;
        for _ in 0..n {
            dense.cycle(&mut port);
        }
        skip.fast_forward(n);
        assert_eq!(snapshot(&dense), snapshot(&skip));
        // After the streak both evolve identically again.
        let mut mem = FixedLatency(1);
        for _ in 0..50 {
            dense.cycle(&mut mem);
            skip.cycle(&mut mem);
        }
        assert_eq!(snapshot(&dense), snapshot(&skip));
    }

    #[test]
    fn fast_forward_matches_dense_full_stall() {
        let mk = || Core::new(SourceId(0), 4, 8, Box::new(Bubbles(0)));
        let mut dense = mk();
        let mut skip = mk();
        let mut pend_a = PendingPort { next_id: 0, issued: vec![] };
        let mut pend_b = PendingPort { next_id: 0, issued: vec![] };
        for _ in 0..20 {
            dense.cycle(&mut pend_a);
            skip.cycle(&mut pend_b);
        }
        assert_eq!(skip.quiescence(), Quiescence::Stalled);
        let mut port = UnreachablePort;
        for _ in 0..1000 {
            dense.cycle(&mut port);
        }
        skip.fast_forward(1000);
        assert_eq!(snapshot(&dense), snapshot(&skip));
        // A completion wakes both the same way.
        dense.complete(pend_a.issued[0]);
        skip.complete(pend_b.issued[0]);
        for _ in 0..3 {
            dense.cycle(&mut pend_a);
            skip.cycle(&mut pend_b);
        }
        assert_eq!(snapshot(&dense), snapshot(&skip));
    }

    #[test]
    fn trace_hungry_states_refuse_to_skip() {
        // Out of bubbles: must report Busy (next dispatch needs the trace,
        // which may yield a memory access).
        let mut core = Core::new(SourceId(0), 4, 32, Box::new(Bubbles(0)));
        let mut pend = PendingPort { next_id: 0, issued: vec![] };
        core.cycle(&mut pend);
        assert_eq!(core.quiescence(), Quiescence::Busy);
    }

    #[test]
    fn fast_forward_spans_in_flight_cache_hits() {
        // A future DoneAt (cache hit mid-latency) no longer blocks the
        // skip: the phase engine stalls through the wait, keeps dispatching
        // bubbles, and resumes the drain — matching dense exactly.
        let mk = || Core::new(SourceId(0), 4, 32, Box::new(Bubbles(200)));
        let mut dense = mk();
        let mut skip = mk();
        let mut port_a = FixedLatency(37);
        let mut port_b = FixedLatency(37);
        // Warm until an access is in flight.
        for _ in 0..52 {
            dense.cycle(&mut port_a);
            skip.cycle(&mut port_b);
        }
        assert!(
            skip.window.iter().any(|s| matches!(s, Slot::DoneAt(t) if *t > skip.cycle)),
            "setup: expected an in-flight hit in the window"
        );
        let Quiescence::Streaming { cycles } = skip.quiescence() else {
            panic!("in-flight hit with staged bubbles must be streamable")
        };
        assert!(cycles > 30, "horizon must span the wait, got {cycles}");
        let mut port = UnreachablePort;
        for _ in 0..cycles {
            dense.cycle(&mut port);
        }
        skip.fast_forward(cycles);
        assert_eq!(snapshot(&dense), snapshot(&skip));
        // Both resume identically through further memory traffic.
        for _ in 0..300 {
            dense.cycle(&mut port_a);
            skip.cycle(&mut port_b);
        }
        assert_eq!(snapshot(&dense), snapshot(&skip));
    }

    /// Answers `Done` for the first few accesses, then `Busy` forever —
    /// parks the core in the port-blocked state with work in flight.
    struct FlakyPort {
        grants_left: u32,
    }
    impl MemoryPort for FlakyPort {
        fn access(&mut self, _s: SourceId, _a: PhysAddr, _k: AccessKind) -> PortResponse {
            if self.grants_left > 0 {
                self.grants_left -= 1;
                PortResponse::Done { latency: 25 }
            } else {
                PortResponse::Busy
            }
        }
    }

    #[test]
    fn port_blocked_forward_matches_dense_busy_port() {
        // Prime two identical cores until an access is parked behind a Busy
        // port while completed-but-unretired work sits in the window, then
        // advance one densely (port still Busy) and one in closed form.
        let mk = || Core::new(SourceId(0), 4, 16, Box::new(Bubbles(3)));
        let mut dense = mk();
        let mut skip = mk();
        let mut flaky_a = FlakyPort { grants_left: 6 };
        let mut flaky_b = FlakyPort { grants_left: 6 };
        for _ in 0..12 {
            dense.cycle(&mut flaky_a);
            skip.cycle(&mut flaky_b);
        }
        // Step densely through any residual streaming headroom until the
        // parked access is the only thing left to do.
        let mut park_a = FlakyPort { grants_left: 0 };
        let mut park_b = FlakyPort { grants_left: 0 };
        for _ in 0..64 {
            if skip.quiescence() == Quiescence::PortBlocked {
                break;
            }
            dense.cycle(&mut park_a);
            skip.cycle(&mut park_b);
        }
        assert_eq!(skip.quiescence(), Quiescence::PortBlocked, "setup must park the core");
        let (addr, is_write) = skip.blocked_access().expect("a parked access");
        assert_eq!((addr, is_write), (PhysAddr(64), false));
        // Walk uneven horizons, comparing against dense stepping with a
        // port that keeps answering Busy.
        let mut busy = NeverReady;
        for chunk in [1u64, 3, 10, 100, 5000] {
            skip.port_blocked_forward(chunk);
            for _ in 0..chunk {
                dense.cycle(&mut busy);
            }
            assert_eq!(snapshot(&dense), snapshot(&skip), "diverged after chunk {chunk}");
        }
        // Once the port opens up again both resume identically.
        let mut mem_a = FixedLatency(9);
        let mut mem_b = FixedLatency(9);
        for _ in 0..60 {
            dense.cycle(&mut mem_a);
            skip.cycle(&mut mem_b);
        }
        assert_eq!(snapshot(&dense), snapshot(&skip));
        assert!(dense.retired() > 0);
    }

    #[test]
    fn port_blocked_pending_head_absorbs_everything() {
        // Pending head + parked access in a *non-full* window (a full one
        // is the stronger `Stalled` state): the whole horizon is one stall.
        let mut core = Core::new(SourceId(0), 4, 8, Box::new(Bubbles(0)));
        let mut pend = PendingPort { next_id: 0, issued: vec![] };
        core.cycle(&mut pend);
        // Park the next access behind a Busy port.
        let mut busy = NeverReady;
        core.cycle(&mut busy);
        assert_eq!(core.quiescence(), Quiescence::PortBlocked);
        let before_retired = core.retired();
        let before_stalls = core.stall_cycles();
        core.port_blocked_forward(1_000_000);
        assert_eq!(core.retired(), before_retired, "pending head cannot retire");
        assert_eq!(core.stall_cycles(), before_stalls + 1_000_000);
    }

    #[test]
    fn fast_forward_in_chunks_matches_one_shot() {
        // System skips land mid-phase; chunked fast-forwarding must agree
        // with dense stepping at every intermediate horizon.
        let mk = || Core::new(SourceId(0), 4, 16, Box::new(Bubbles(73)));
        let mut dense = mk();
        let mut skip = mk();
        let mut port_a = FixedLatency(29);
        let mut port_b = FixedLatency(29);
        for _ in 0..40 {
            dense.cycle(&mut port_a);
            skip.cycle(&mut port_b);
        }
        let mut port = UnreachablePort;
        if let Quiescence::Streaming { cycles } = skip.quiescence() {
            // Advance in uneven chunks across the horizon.
            let mut left = cycles;
            while left > 0 {
                let chunk = (left / 3).max(1);
                skip.fast_forward(chunk);
                for _ in 0..chunk {
                    dense.cycle(&mut port);
                }
                assert_eq!(snapshot(&dense), snapshot(&skip));
                left -= chunk;
            }
        }
        assert_eq!(snapshot(&dense), snapshot(&skip));
    }
}
