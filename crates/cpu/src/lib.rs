//! Trace-driven out-of-order core model.
//!
//! This reproduces the abstraction Ramulator's OoO frontend uses (and which
//! the paper's evaluation relies on, Section IV): each core retires up to
//! `width` instructions per core cycle from a `rob_entries`-deep instruction
//! window. Non-memory instructions complete in one cycle; memory
//! instructions are sent to a [`MemoryPort`] and occupy their window slot
//! until the port reports completion, so a full window stalls the core on
//! the oldest outstanding miss. Stores retire without waiting (write
//! buffering).
//!
//! Cores run at 4 GHz while the rest of the system runs on the 3.2 GHz
//! memory-bus clock; [`ClockRatio`] converts between the domains (5 core
//! cycles per 4 bus cycles).
//!
//! # Example
//!
//! ```
//! use cpu::{Core, MemoryPort, PortResponse, TraceEntry, TraceSource};
//! use sim_core::{AccessKind, PhysAddr, SourceId};
//!
//! struct FlatMemory;
//! impl MemoryPort for FlatMemory {
//!     fn access(&mut self, _s: SourceId, _a: PhysAddr, _k: AccessKind) -> PortResponse {
//!         PortResponse::Done { latency: 10 }
//!     }
//! }
//!
//! struct Stream;
//! impl TraceSource for Stream {
//!     fn next_entry(&mut self) -> TraceEntry {
//!         TraceEntry { bubbles: 3, addr: PhysAddr(0x1000), is_write: false }
//!     }
//! }
//!
//! let mut core = Core::new(SourceId(0), 4, 128, Box::new(Stream));
//! let mut mem = FlatMemory;
//! for _ in 0..100 {
//!     core.cycle(&mut mem);
//! }
//! assert!(core.retired() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::{HashMap, VecDeque};

use sim_core::addr::PhysAddr;
use sim_core::req::{AccessKind, SourceId};

/// One trace record: `bubbles` non-memory instructions followed by one
/// memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEntry {
    /// Non-memory instructions preceding the access.
    pub bubbles: u32,
    /// Physical address of the access.
    pub addr: PhysAddr,
    /// True for stores.
    pub is_write: bool,
}

/// An endless instruction stream feeding one core.
pub trait TraceSource {
    /// Produces the next record. Sources are infinite; runs are bounded by
    /// time or instruction count, never by trace exhaustion.
    fn next_entry(&mut self) -> TraceEntry;
}

/// Response of the memory hierarchy to a core access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PortResponse {
    /// Completed synchronously (cache hit / buffered store); the slot is
    /// ready after `latency` core cycles.
    Done {
        /// Completion latency in core cycles.
        latency: u32,
    },
    /// Outstanding (LLC miss sent to DRAM); completion arrives later via
    /// [`Core::complete`] using this id.
    Pending {
        /// Request id to be echoed on completion.
        req_id: u64,
    },
    /// The hierarchy cannot accept the request this cycle; retry.
    Busy,
}

/// The memory hierarchy as seen by a core.
pub trait MemoryPort {
    /// Issues an access on behalf of `source`.
    fn access(&mut self, source: SourceId, addr: PhysAddr, kind: AccessKind) -> PortResponse;
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Slot {
    DoneAt(u64),
    Pending,
}

/// A single trace-driven core.
pub struct Core {
    id: SourceId,
    width: u32,
    rob: usize,
    window: VecDeque<Slot>,
    head_seq: u64,
    next_seq: u64,
    pending: HashMap<u64, u64>,
    trace: Box<dyn TraceSource>,
    bubbles_left: u32,
    staged_access: Option<(PhysAddr, bool)>,
    cycle: u64,
    retired: u64,
    mem_reads: u64,
    mem_writes: u64,
    stall_cycles: u64,
}

impl std::fmt::Debug for Core {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Core")
            .field("id", &self.id)
            .field("cycle", &self.cycle)
            .field("retired", &self.retired)
            .field("window", &self.window.len())
            .field("outstanding", &self.pending.len())
            .finish_non_exhaustive()
    }
}

impl Core {
    /// Creates a core with the given retire width and window size.
    ///
    /// # Panics
    ///
    /// Panics if `width` or `rob_entries` is zero.
    pub fn new(id: SourceId, width: u32, rob_entries: usize, trace: Box<dyn TraceSource>) -> Self {
        assert!(width > 0, "retire width must be positive");
        assert!(rob_entries > 0, "window must hold at least one instruction");
        Self {
            id,
            width,
            rob: rob_entries,
            window: VecDeque::with_capacity(rob_entries),
            head_seq: 0,
            next_seq: 0,
            pending: HashMap::new(),
            trace,
            bubbles_left: 0,
            staged_access: None,
            cycle: 0,
            retired: 0,
            mem_reads: 0,
            mem_writes: 0,
            stall_cycles: 0,
        }
    }

    /// The core's source id.
    pub fn id(&self) -> SourceId {
        self.id
    }

    /// Instructions retired so far.
    pub fn retired(&self) -> u64 {
        self.retired
    }

    /// Core cycles elapsed.
    pub fn cycles(&self) -> u64 {
        self.cycle
    }

    /// Instructions per core cycle so far (0.0 before the first cycle).
    pub fn ipc(&self) -> f64 {
        if self.cycle == 0 {
            0.0
        } else {
            self.retired as f64 / self.cycle as f64
        }
    }

    /// (reads, writes) issued to the memory hierarchy.
    pub fn mem_accesses(&self) -> (u64, u64) {
        (self.mem_reads, self.mem_writes)
    }

    /// Cycles in which nothing retired.
    pub fn stall_cycles(&self) -> u64 {
        self.stall_cycles
    }

    /// Advances the core by one **core** cycle.
    pub fn cycle(&mut self, port: &mut dyn MemoryPort) {
        // Retire from the head.
        let mut retired_now = 0;
        while retired_now < self.width {
            match self.window.front() {
                Some(Slot::DoneAt(t)) if *t <= self.cycle => {
                    self.window.pop_front();
                    self.head_seq += 1;
                    self.retired += 1;
                    retired_now += 1;
                }
                _ => break,
            }
        }
        if retired_now == 0 && !self.window.is_empty() {
            self.stall_cycles += 1;
        }

        // Dispatch into the window.
        let mut dispatched = 0;
        while dispatched < self.width && self.window.len() < self.rob {
            if self.bubbles_left > 0 {
                self.bubbles_left -= 1;
                self.window.push_back(Slot::DoneAt(self.cycle + 1));
                self.next_seq += 1;
                dispatched += 1;
                continue;
            }
            let (addr, is_write) = match self.staged_access.take() {
                Some(acc) => acc,
                None => {
                    let e = self.trace.next_entry();
                    if e.bubbles > 0 {
                        self.bubbles_left = e.bubbles;
                        self.staged_access = Some((e.addr, e.is_write));
                        continue;
                    }
                    (e.addr, e.is_write)
                }
            };
            let kind = if is_write { AccessKind::Write } else { AccessKind::Read };
            match port.access(self.id, addr, kind) {
                PortResponse::Busy => {
                    // Hierarchy full: park the access and stop dispatching.
                    self.staged_access = Some((addr, is_write));
                    break;
                }
                PortResponse::Done { latency } => {
                    if is_write {
                        self.mem_writes += 1;
                    } else {
                        self.mem_reads += 1;
                    }
                    self.window.push_back(Slot::DoneAt(self.cycle + latency as u64));
                    self.next_seq += 1;
                    dispatched += 1;
                }
                PortResponse::Pending { req_id } => {
                    if is_write {
                        self.mem_writes += 1;
                    } else {
                        self.mem_reads += 1;
                    }
                    self.pending.insert(req_id, self.next_seq);
                    self.window.push_back(Slot::Pending);
                    self.next_seq += 1;
                    dispatched += 1;
                }
            }
        }

        self.cycle += 1;
    }

    /// Marks an outstanding request complete. Unknown ids are ignored
    /// (writes may complete after their slot retired in other models; ours
    /// only reports reads, so unknown ids indicate a harness bug in debug
    /// builds).
    pub fn complete(&mut self, req_id: u64) {
        if let Some(seq) = self.pending.remove(&req_id) {
            let idx = (seq - self.head_seq) as usize;
            debug_assert!(idx < self.window.len(), "completion for retired slot");
            if let Some(slot) = self.window.get_mut(idx) {
                debug_assert_eq!(*slot, Slot::Pending);
                *slot = Slot::DoneAt(self.cycle);
            }
        } else {
            debug_assert!(false, "completion for unknown request {req_id}");
        }
    }

    /// Number of window slots still waiting on memory.
    pub fn outstanding(&self) -> usize {
        self.pending.len()
    }
}

/// Converts bus cycles (3.2 GHz) into core cycles (4 GHz): five core cycles
/// per four bus cycles.
///
/// # Example
///
/// ```
/// use cpu::ClockRatio;
///
/// let mut r = ClockRatio::core_over_bus();
/// let total: u32 = (0..4).map(|_| r.core_cycles_for_bus_cycle()).sum();
/// assert_eq!(total, 5);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct ClockRatio {
    acc: u32,
}

impl ClockRatio {
    /// The 4 GHz-over-3.2 GHz ratio used by the baseline system.
    pub fn core_over_bus() -> Self {
        Self { acc: 0 }
    }

    /// Core cycles to run for the next bus cycle (1 or 2; averages 1.25).
    pub fn core_cycles_for_bus_cycle(&mut self) -> u32 {
        self.acc += 5;
        let n = self.acc / 4;
        self.acc %= 4;
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct FixedLatency(u32);
    impl MemoryPort for FixedLatency {
        fn access(&mut self, _s: SourceId, _a: PhysAddr, _k: AccessKind) -> PortResponse {
            PortResponse::Done { latency: self.0 }
        }
    }

    struct NeverReady;
    impl MemoryPort for NeverReady {
        fn access(&mut self, _s: SourceId, _a: PhysAddr, _k: AccessKind) -> PortResponse {
            PortResponse::Busy
        }
    }

    struct PendingPort {
        next_id: u64,
        issued: Vec<u64>,
    }
    impl MemoryPort for PendingPort {
        fn access(&mut self, _s: SourceId, _a: PhysAddr, _k: AccessKind) -> PortResponse {
            self.next_id += 1;
            self.issued.push(self.next_id);
            PortResponse::Pending { req_id: self.next_id }
        }
    }

    struct Bubbles(u32);
    impl TraceSource for Bubbles {
        fn next_entry(&mut self) -> TraceEntry {
            TraceEntry { bubbles: self.0, addr: PhysAddr(64), is_write: false }
        }
    }

    #[test]
    fn ideal_ipc_approaches_width() {
        // With huge bubble counts and 1-cycle memory, IPC ~ width.
        let mut core = Core::new(SourceId(0), 4, 128, Box::new(Bubbles(1000)));
        let mut mem = FixedLatency(1);
        for _ in 0..1000 {
            core.cycle(&mut mem);
        }
        let ipc = core.ipc();
        assert!(ipc > 3.5, "ipc = {ipc}");
    }

    #[test]
    fn memory_latency_throttles_ipc() {
        let mut fast = Core::new(SourceId(0), 4, 8, Box::new(Bubbles(0)));
        let mut slow = Core::new(SourceId(0), 4, 8, Box::new(Bubbles(0)));
        let mut m_fast = FixedLatency(1);
        let mut m_slow = FixedLatency(100);
        for _ in 0..2000 {
            fast.cycle(&mut m_fast);
            slow.cycle(&mut m_slow);
        }
        assert!(slow.ipc() < fast.ipc() / 4.0, "{} vs {}", slow.ipc(), fast.ipc());
    }

    #[test]
    fn busy_port_stalls_dispatch_entirely() {
        let mut core = Core::new(SourceId(0), 4, 16, Box::new(Bubbles(0)));
        let mut mem = NeverReady;
        for _ in 0..100 {
            core.cycle(&mut mem);
        }
        assert_eq!(core.retired(), 0);
        let (r, w) = core.mem_accesses();
        assert_eq!(r + w, 0);
    }

    #[test]
    fn window_bounds_outstanding_misses() {
        let mut core = Core::new(SourceId(0), 4, 16, Box::new(Bubbles(0)));
        let mut mem = PendingPort { next_id: 0, issued: vec![] };
        for _ in 0..100 {
            core.cycle(&mut mem);
        }
        assert!(core.outstanding() <= 16);
        assert_eq!(core.outstanding(), 16, "window should fill with misses");
        assert_eq!(core.retired(), 0);
    }

    #[test]
    fn completion_unblocks_retire_in_order() {
        let mut core = Core::new(SourceId(0), 1, 4, Box::new(Bubbles(0)));
        let mut mem = PendingPort { next_id: 0, issued: vec![] };
        for _ in 0..10 {
            core.cycle(&mut mem);
        }
        assert_eq!(core.retired(), 0);
        let first = mem.issued[0];
        let second = mem.issued[1];
        // Complete out of order: second first.
        core.complete(second);
        core.cycle(&mut mem);
        assert_eq!(core.retired(), 0, "head still pending; retire is in-order");
        core.complete(first);
        core.cycle(&mut mem);
        core.cycle(&mut mem);
        assert!(core.retired() >= 2, "both slots retire once head completes");
    }

    #[test]
    fn stores_count_separately() {
        struct Stores;
        impl TraceSource for Stores {
            fn next_entry(&mut self) -> TraceEntry {
                TraceEntry { bubbles: 0, addr: PhysAddr(0), is_write: true }
            }
        }
        let mut core = Core::new(SourceId(1), 2, 8, Box::new(Stores));
        let mut mem = FixedLatency(1);
        for _ in 0..50 {
            core.cycle(&mut mem);
        }
        let (r, w) = core.mem_accesses();
        assert_eq!(r, 0);
        assert!(w > 0);
    }

    #[test]
    fn clock_ratio_five_over_four() {
        let mut r = ClockRatio::core_over_bus();
        let seq: Vec<u32> = (0..8).map(|_| r.core_cycles_for_bus_cycle()).collect();
        assert_eq!(seq.iter().sum::<u32>(), 10, "{seq:?}");
        assert!(seq.iter().all(|&c| c == 1 || c == 2));
    }
}
