//! Offline stand-in for `criterion`.
//!
//! Implements just enough of criterion's surface for the benches under
//! `crates/bench/benches` to compile and produce useful numbers without
//! crates.io access: `Criterion::benchmark_group`, `bench_function`,
//! `Bencher::iter`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros. Measurement is a simple calibrated wall-clock
//! loop (warm-up, then enough iterations to cover ~50 ms) reporting ns/iter
//! — no statistics, plots, or CLI. Swap the path dependency for the real
//! crate to get the full harness.

#![forbid(unsafe_code)]

use std::time::Instant;

pub use std::hint::black_box;

/// Entry point mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        println!("group: {name}");
        BenchmarkGroup { _private: () }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, f);
        self
    }
}

/// A group of benchmarks sharing a name prefix.
#[derive(Debug)]
pub struct BenchmarkGroup {
    _private: (),
}

impl BenchmarkGroup {
    /// Accepted for compatibility; the shim does not resample.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; runs the timing loop.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed_ns: u128,
}

impl Bencher {
    /// Times `f`, first warming up, then scaling the iteration count so the
    /// measured loop runs for roughly 50 ms.
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        // Warm-up & calibration: find an iteration count covering ~10 ms.
        let mut n: u64 = 1;
        loop {
            let t = Instant::now();
            for _ in 0..n {
                black_box(f());
            }
            let dt = t.elapsed();
            if dt.as_millis() >= 10 || n >= 1 << 30 {
                // Scale to ~50 ms for the measured run.
                let per_iter = dt.as_nanos().max(1) / n as u128;
                let target = 50_000_000u128;
                n = ((target / per_iter.max(1)) as u64).clamp(1, 1 << 32);
                break;
            }
            n *= 4;
        }
        let t = Instant::now();
        for _ in 0..n {
            black_box(f());
        }
        self.iters = n;
        self.elapsed_ns = t.elapsed().as_nanos();
    }

    fn report(&self, name: &str) {
        if self.iters == 0 {
            println!("  {name:<40} (no measurement)");
        } else {
            let per = self.elapsed_ns as f64 / self.iters as f64;
            println!("  {name:<40} {per:>12.1} ns/iter ({} iters)", self.iters);
        }
    }
}

fn run_one<F>(name: &str, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut b = Bencher { iters: 0, elapsed_ns: 0 };
    f(&mut b);
    b.report(name);
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the benchmark `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
