//! Offline stand-in for `serde`.
//!
//! The container building this workspace has no crates.io access, and no
//! code path in the repo serializes through serde — the derives on config
//! and stats types document intent only. This shim provides the two marker
//! traits plus the no-op derive macros so those annotations keep compiling
//! unchanged. If real serialization is ever needed, swap this path
//! dependency for the real crate; nothing else has to change.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize` (no methods in the shim).
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize` (no methods in the shim).
pub trait Deserialize<'de> {}
