//! Offline stand-in for the real `serde_derive`.
//!
//! The build environment has no access to crates.io, and nothing in this
//! workspace actually serializes through serde: the `#[derive(Serialize,
//! Deserialize)]` annotations only declare intent. These derives therefore
//! expand to nothing; the marker traits live in the sibling `serde` shim.
//! Structured output (JSON/CSV) is hand-rolled where needed (see
//! `attacklab::json`).

use proc_macro::TokenStream;

/// No-op `Serialize` derive: accepts any item, emits no impl.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive: accepts any item, emits no impl.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
