//! Counters and summary statistics used across the simulator.

use crate::json::Json;
use serde::{Deserialize, Serialize};

/// Running mean/min/max over a stream of samples.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RunningStats {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self { count: 0, sum: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    /// Adds one sample.
    pub fn push(&mut self, v: f64) {
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of samples seen.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean, or 0.0 if empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Minimum sample, or NaN if empty.
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.min
        }
    }

    /// Maximum sample, or NaN if empty.
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.max
        }
    }

    /// Serializes the accumulator as a JSON object. An empty accumulator
    /// has no min/max (±∞ internally); those serialize as `null` rather
    /// than leaking non-finite floats into the document (which the writer
    /// would otherwise have to mangle — see [`Json::num`]).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("count", Json::count(self.count)),
            ("mean", Json::num(self.mean())),
            ("min", Json::num(self.min())),
            ("max", Json::num(self.max())),
        ])
    }
}

/// Geometric mean of a slice (the paper reports normalized performance as
/// means across workloads; we expose both).
///
/// Returns 0.0 for an empty slice.
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.max(1e-12).ln()).sum();
    (log_sum / values.len() as f64).exp()
}

/// Arithmetic mean of a slice; 0.0 for an empty slice.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// Event counters kept by the memory system. All counts are per-run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemStats {
    /// ACT commands issued for demand traffic.
    pub activations: u64,
    /// PRE commands issued.
    pub precharges: u64,
    /// Column reads.
    pub reads: u64,
    /// Column writes.
    pub writes: u64,
    /// Auto-refresh (REF) commands.
    pub refreshes: u64,
    /// Victim-row-refresh mitigation commands.
    pub vrr_commands: u64,
    /// Individual victim rows refreshed by mitigations.
    pub victim_rows_refreshed: u64,
    /// RFM / DRFM mitigation commands.
    pub rfm_commands: u64,
    /// Tracker metadata reads injected into DRAM (Hydra/START).
    pub counter_reads: u64,
    /// Tracker metadata writes injected into DRAM (Hydra/START).
    pub counter_writes: u64,
    /// Full structure-reset sweeps (CoMeT/ABACUS early resets).
    pub reset_sweeps: u64,
    /// Cycles any bank spent blocked by mitigation work.
    pub mitigation_block_cycles: u64,
    /// Row-buffer hits among demand accesses.
    pub row_hits: u64,
    /// Row-buffer misses among demand accesses.
    pub row_misses: u64,
}

impl MemStats {
    /// Row-buffer hit rate over demand accesses; 0.0 when idle.
    pub fn row_hit_rate(&self) -> f64 {
        let total = self.row_hits + self.row_misses;
        if total == 0 {
            0.0
        } else {
            self.row_hits as f64 / total as f64
        }
    }

    /// Sums another stats block into this one (for cross-channel totals).
    pub fn merge(&mut self, other: &MemStats) {
        self.activations += other.activations;
        self.precharges += other.precharges;
        self.reads += other.reads;
        self.writes += other.writes;
        self.refreshes += other.refreshes;
        self.vrr_commands += other.vrr_commands;
        self.victim_rows_refreshed += other.victim_rows_refreshed;
        self.rfm_commands += other.rfm_commands;
        self.counter_reads += other.counter_reads;
        self.counter_writes += other.counter_writes;
        self.reset_sweeps += other.reset_sweeps;
        self.mitigation_block_cycles += other.mitigation_block_cycles;
        self.row_hits += other.row_hits;
        self.row_misses += other.row_misses;
    }

    /// Field-wise difference against an earlier snapshot of the same
    /// counters (all counters are monotonic, so this is the amount
    /// accumulated since the snapshot — the per-window deltas telemetry
    /// samples are made of).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `earlier` is not actually an earlier
    /// snapshot (any field exceeding `self`).
    pub fn delta_since(&self, earlier: &MemStats) -> MemStats {
        MemStats {
            activations: self.activations - earlier.activations,
            precharges: self.precharges - earlier.precharges,
            reads: self.reads - earlier.reads,
            writes: self.writes - earlier.writes,
            refreshes: self.refreshes - earlier.refreshes,
            vrr_commands: self.vrr_commands - earlier.vrr_commands,
            victim_rows_refreshed: self.victim_rows_refreshed - earlier.victim_rows_refreshed,
            rfm_commands: self.rfm_commands - earlier.rfm_commands,
            counter_reads: self.counter_reads - earlier.counter_reads,
            counter_writes: self.counter_writes - earlier.counter_writes,
            reset_sweeps: self.reset_sweeps - earlier.reset_sweeps,
            mitigation_block_cycles: self.mitigation_block_cycles - earlier.mitigation_block_cycles,
            row_hits: self.row_hits - earlier.row_hits,
            row_misses: self.row_misses - earlier.row_misses,
        }
    }

    /// Serializes every counter under its field name. The field-drift
    /// guard in this module's tests checks this listing (and `merge` /
    /// `delta_since`) against the struct's actual fields, so a new
    /// telemetry counter cannot be silently dropped from cross-channel
    /// totals or window deltas.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("activations", Json::count(self.activations)),
            ("precharges", Json::count(self.precharges)),
            ("reads", Json::count(self.reads)),
            ("writes", Json::count(self.writes)),
            ("refreshes", Json::count(self.refreshes)),
            ("vrr_commands", Json::count(self.vrr_commands)),
            ("victim_rows_refreshed", Json::count(self.victim_rows_refreshed)),
            ("rfm_commands", Json::count(self.rfm_commands)),
            ("counter_reads", Json::count(self.counter_reads)),
            ("counter_writes", Json::count(self.counter_writes)),
            ("reset_sweeps", Json::count(self.reset_sweeps)),
            ("mitigation_block_cycles", Json::count(self.mitigation_block_cycles)),
            ("row_hits", Json::count(self.row_hits)),
            ("row_misses", Json::count(self.row_misses)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn running_stats_basics() {
        let mut s = RunningStats::new();
        assert_eq!(s.mean(), 0.0);
        s.push(1.0);
        s.push(3.0);
        assert_eq!(s.count(), 2);
        assert_eq!(s.mean(), 2.0);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 3.0);
    }

    #[test]
    fn geomean_of_equal_values_is_value() {
        assert!((geomean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    fn geomean_below_arithmetic_mean() {
        let v = [0.5, 1.0, 2.0, 4.0];
        assert!(geomean(&v) < mean(&v));
    }

    /// A `MemStats` with every field set to a distinct nonzero value.
    /// Written as a full struct literal on purpose: adding a field to
    /// `MemStats` breaks this constructor until the test (and, via the
    /// assertions below, `to_json`, `merge`, and `delta_since`) is
    /// updated to cover it.
    fn fully_populated() -> MemStats {
        MemStats {
            activations: 1,
            precharges: 2,
            reads: 3,
            writes: 4,
            refreshes: 5,
            vrr_commands: 6,
            victim_rows_refreshed: 7,
            rfm_commands: 8,
            counter_reads: 9,
            counter_writes: 10,
            reset_sweeps: 11,
            mitigation_block_cycles: 12,
            row_hits: 13,
            row_misses: 14,
        }
    }

    /// Field names as the derived `Debug` impl reports them — i.e. the
    /// struct's actual fields, immune to hand-maintained lists drifting.
    fn debug_field_names(m: &MemStats) -> Vec<String> {
        let dbg = format!("{m:?}");
        let inner = dbg.trim_start_matches("MemStats {").trim_end_matches('}').trim();
        inner.split(", ").map(|pair| pair.split(':').next().unwrap().trim().to_string()).collect()
    }

    #[test]
    fn memstats_merge_covers_every_field() {
        // Drift guard: serialize a fully-populated struct, then check that
        // (a) `to_json` names exactly the struct's fields and (b) `merge`
        // and `delta_since` transform every one of them. A counter added
        // to the struct but forgotten in `merge` shows up here as an
        // un-doubled field instead of silently vanishing from
        // cross-channel totals.
        let populated = fully_populated();
        let fields = debug_field_names(&populated);
        let json = populated.to_json();
        let Json::Obj(pairs) = &json else { panic!("to_json must be an object") };
        let keys: Vec<&str> = pairs.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(
            keys, fields,
            "MemStats::to_json keys must match the struct's fields (same order)"
        );
        for (key, value) in pairs {
            assert_ne!(value, &Json::Num(0.0), "field '{key}' must be populated in this test");
        }

        let mut merged = populated;
        merged.merge(&populated);
        let Json::Obj(merged_pairs) = merged.to_json() else { unreachable!() };
        for ((key, before), (_, after)) in pairs.iter().zip(&merged_pairs) {
            let (Json::Num(b), Json::Num(a)) = (before, after) else { unreachable!() };
            assert_eq!(*a, 2.0 * b, "merge drops or mis-sums field '{key}'");
        }

        assert_eq!(merged.delta_since(&populated), populated, "delta must invert merge");
        assert_eq!(populated.delta_since(&populated), MemStats::default());
    }

    #[test]
    fn empty_running_stats_serialize_as_valid_json() {
        // Regression: zero-sample min/max are ±INFINITY internally; the
        // serialized form must be valid JSON (`null`), and parse back.
        let empty = RunningStats::new();
        let text = empty.to_json().render();
        assert_eq!(text, r#"{"count":0,"mean":0,"min":null,"max":null}"#);
        let back = Json::parse(&text).expect("must round-trip through the parser");
        assert_eq!(back.get("min"), Some(&Json::Null));
        // A populated accumulator keeps real numbers.
        let mut s = RunningStats::new();
        s.push(2.0);
        s.push(4.0);
        let back = Json::parse(&s.to_json().render()).unwrap();
        assert_eq!(back.get("min"), Some(&Json::Num(2.0)));
        assert_eq!(back.get("max"), Some(&Json::Num(4.0)));
        assert_eq!(back.get("mean"), Some(&Json::Num(3.0)));
    }

    #[test]
    fn memstats_merge_adds_fields() {
        let mut a = MemStats { activations: 1, row_hits: 2, ..Default::default() };
        let b = MemStats { activations: 3, row_misses: 4, ..Default::default() };
        a.merge(&b);
        assert_eq!(a.activations, 4);
        assert_eq!(a.row_hits, 2);
        assert_eq!(a.row_misses, 4);
        assert!((a.row_hit_rate() - 2.0 / 6.0).abs() < 1e-12);
    }
}
