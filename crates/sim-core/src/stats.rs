//! Counters and summary statistics used across the simulator.

use serde::{Deserialize, Serialize};

/// Running mean/min/max over a stream of samples.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RunningStats {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self { count: 0, sum: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    /// Adds one sample.
    pub fn push(&mut self, v: f64) {
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of samples seen.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean, or 0.0 if empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Minimum sample, or NaN if empty.
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.min
        }
    }

    /// Maximum sample, or NaN if empty.
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.max
        }
    }
}

/// Geometric mean of a slice (the paper reports normalized performance as
/// means across workloads; we expose both).
///
/// Returns 0.0 for an empty slice.
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.max(1e-12).ln()).sum();
    (log_sum / values.len() as f64).exp()
}

/// Arithmetic mean of a slice; 0.0 for an empty slice.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// Event counters kept by the memory system. All counts are per-run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemStats {
    /// ACT commands issued for demand traffic.
    pub activations: u64,
    /// PRE commands issued.
    pub precharges: u64,
    /// Column reads.
    pub reads: u64,
    /// Column writes.
    pub writes: u64,
    /// Auto-refresh (REF) commands.
    pub refreshes: u64,
    /// Victim-row-refresh mitigation commands.
    pub vrr_commands: u64,
    /// Individual victim rows refreshed by mitigations.
    pub victim_rows_refreshed: u64,
    /// RFM / DRFM mitigation commands.
    pub rfm_commands: u64,
    /// Tracker metadata reads injected into DRAM (Hydra/START).
    pub counter_reads: u64,
    /// Tracker metadata writes injected into DRAM (Hydra/START).
    pub counter_writes: u64,
    /// Full structure-reset sweeps (CoMeT/ABACUS early resets).
    pub reset_sweeps: u64,
    /// Cycles any bank spent blocked by mitigation work.
    pub mitigation_block_cycles: u64,
    /// Row-buffer hits among demand accesses.
    pub row_hits: u64,
    /// Row-buffer misses among demand accesses.
    pub row_misses: u64,
}

impl MemStats {
    /// Row-buffer hit rate over demand accesses; 0.0 when idle.
    pub fn row_hit_rate(&self) -> f64 {
        let total = self.row_hits + self.row_misses;
        if total == 0 {
            0.0
        } else {
            self.row_hits as f64 / total as f64
        }
    }

    /// Sums another stats block into this one (for cross-channel totals).
    pub fn merge(&mut self, other: &MemStats) {
        self.activations += other.activations;
        self.precharges += other.precharges;
        self.reads += other.reads;
        self.writes += other.writes;
        self.refreshes += other.refreshes;
        self.vrr_commands += other.vrr_commands;
        self.victim_rows_refreshed += other.victim_rows_refreshed;
        self.rfm_commands += other.rfm_commands;
        self.counter_reads += other.counter_reads;
        self.counter_writes += other.counter_writes;
        self.reset_sweeps += other.reset_sweeps;
        self.mitigation_block_cycles += other.mitigation_block_cycles;
        self.row_hits += other.row_hits;
        self.row_misses += other.row_misses;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn running_stats_basics() {
        let mut s = RunningStats::new();
        assert_eq!(s.mean(), 0.0);
        s.push(1.0);
        s.push(3.0);
        assert_eq!(s.count(), 2);
        assert_eq!(s.mean(), 2.0);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 3.0);
    }

    #[test]
    fn geomean_of_equal_values_is_value() {
        assert!((geomean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    fn geomean_below_arithmetic_mean() {
        let v = [0.5, 1.0, 2.0, 4.0];
        assert!(geomean(&v) < mean(&v));
    }

    #[test]
    fn memstats_merge_adds_fields() {
        let mut a = MemStats { activations: 1, row_hits: 2, ..Default::default() };
        let b = MemStats { activations: 3, row_misses: 4, ..Default::default() };
        a.merge(&b);
        assert_eq!(a.activations, 4);
        assert_eq!(a.row_hits, 2);
        assert_eq!(a.row_misses, 4);
        assert!((a.row_hit_rate() - 2.0 / 6.0).abs() < 1e-12);
    }
}
