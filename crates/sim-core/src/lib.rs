//! Shared vocabulary for the DAPPER reproduction.
//!
//! This crate defines the types every other crate in the workspace speaks:
//!
//! * [`addr`] — physical and DRAM coordinates plus the address-mapping scheme,
//! * [`cache`] — a content-addressed blob cache (stable hashing, checksummed
//!   atomic disk store, LRU front) underpinning the run cache and
//!   `campaignd`,
//! * [`time`] — the global clock domain (DDR5 memory-bus cycles) and unit
//!   conversions,
//! * [`config`] — the system configuration mirroring Table I of the paper,
//! * [`fault`] — the deterministic fault-injection plane ([`FaultPlan`] /
//!   [`Injector`]) the chaos suite arms into the cache, runner, pool, and
//!   `campaignd` layers,
//! * [`tracker`] — the [`RowHammerTracker`] trait
//!   through which the memory controller consults a mitigation,
//! * [`registry`] — the open, string-keyed
//!   [`TrackerRegistry`] through which trackers
//!   are described, parameterized, and built,
//! * [`json`] — a dependency-free JSON builder/parser for spec files and
//!   structured results,
//! * [`req`] — memory requests exchanged by cores, caches, and controllers,
//! * [`rng`] — small deterministic PRNGs used in simulation hot paths,
//! * [`sched`] — the [`NextEvent`] contract components
//!   implement so the time-skipping engine can jump quiet stretches,
//! * [`stats`] — counters and summary statistics,
//! * [`telemetry`] — the composable [`Probe`] observation
//!   API: typed taps on memory events, per-window counter deltas, and run
//!   lifecycle, with built-in recorders (time series, slowdown traces,
//!   mitigation logs) that attach to a run without perturbing it.
//!
//! # Example
//!
//! ```
//! use sim_core::addr::{DramAddr, Geometry};
//!
//! let geom = Geometry::paper_baseline();
//! let addr = DramAddr::new(0, 1, 3, 2, 4096, 17);
//! let flat = geom.rank_row_index(&addr);
//! let back = geom.addr_from_rank_row_index(addr.channel, addr.rank, flat);
//! assert_eq!((back.bank_group, back.bank, back.row), (3, 2, 4096));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod addr;
pub mod cache;
pub mod config;
pub mod events;
pub mod fault;
pub mod json;
pub mod registry;
pub mod req;
pub mod rng;
pub mod sched;
pub mod stats;
pub mod telemetry;
pub mod time;
pub mod tracker;

pub use addr::{DramAddr, Geometry, PhysAddr};
pub use cache::{CacheStats, DiskStore};
pub use config::{SystemConfig, Threads};
pub use events::MemEvent;
pub use fault::{FaultAction, FaultPlan, FaultRule, FaultSite, Injector, Trigger};
pub use registry::{
    ParamSpec, ParamValue, RegistryError, TrackerParams, TrackerRegistry, TrackerSpec,
};
pub use req::{AccessKind, MemRequest, SourceId};
pub use sched::NextEvent;
pub use telemetry::{
    LatencyProbe, LatencySample, MitigationLog, NullProbe, Probe, SlowdownTrace, Telemetry,
    TimeSeriesRecorder, WindowSample,
};
pub use time::Cycle;
pub use tracker::{Activation, RowHammerTracker, StorageOverhead, TrackerAction};
