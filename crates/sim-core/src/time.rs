//! The global clock domain.
//!
//! Everything in the simulator runs on the **memory-bus clock** of a
//! DDR5-6400 part: 3.2 GHz, i.e. one cycle every 0.3125 ns. Cores nominally
//! run at 4 GHz (Table I); instead of modelling two clock domains we scale
//! core throughput by the 4/3.2 ratio (see the `cpu` crate).
//!
//! # Example
//!
//! ```
//! use sim_core::time::{ns_to_cycles, cycles_to_ns, us_to_cycles, BUS_FREQ_GHZ};
//!
//! assert_eq!(BUS_FREQ_GHZ, 3.2);
//! assert_eq!(ns_to_cycles(48.0), 154); // tRC rounds up
//! assert_eq!(us_to_cycles(3.9), 12480); // tREFI
//! assert!((cycles_to_ns(154) - 48.125).abs() < 1e-9);
//! ```

/// A point in time or a duration, measured in memory-bus cycles.
pub type Cycle = u64;

/// Memory-bus frequency in GHz (DDR5-6400: 3.2 GHz clock, 6.4 GT/s data).
pub const BUS_FREQ_GHZ: f64 = 3.2;

/// Nominal core frequency in GHz (Table I).
pub const CORE_FREQ_GHZ: f64 = 4.0;

/// Converts nanoseconds to bus cycles, rounding up (timing constraints are
/// minimums, so rounding up is the conservative direction).
pub fn ns_to_cycles(ns: f64) -> Cycle {
    (ns * BUS_FREQ_GHZ).ceil() as Cycle
}

/// Converts microseconds to bus cycles, rounding up.
pub fn us_to_cycles(us: f64) -> Cycle {
    ns_to_cycles(us * 1_000.0)
}

/// Converts milliseconds to bus cycles, rounding up.
pub fn ms_to_cycles(ms: f64) -> Cycle {
    ns_to_cycles(ms * 1_000_000.0)
}

/// Converts a cycle count back to nanoseconds.
pub fn cycles_to_ns(cycles: Cycle) -> f64 {
    cycles as f64 / BUS_FREQ_GHZ
}

/// Converts a cycle count to microseconds.
pub fn cycles_to_us(cycles: Cycle) -> f64 {
    cycles_to_ns(cycles) / 1_000.0
}

/// Converts a cycle count to milliseconds.
pub fn cycles_to_ms(cycles: Cycle) -> f64 {
    cycles_to_ns(cycles) / 1_000_000.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_are_close() {
        for ns in [0.5, 2.5, 48.0, 295.0, 3900.0] {
            let c = ns_to_cycles(ns);
            let back = cycles_to_ns(c);
            assert!(back >= ns, "rounding must not shorten a constraint");
            assert!(back - ns < 1.0, "rounding error under one cycle: {ns} -> {back}");
        }
    }

    #[test]
    fn trefw_is_about_102m_cycles() {
        // 32 ms refresh window at 3.2 GHz.
        assert_eq!(ms_to_cycles(32.0), 102_400_000);
    }

    #[test]
    fn unit_helpers_agree() {
        assert_eq!(us_to_cycles(1.0), ns_to_cycles(1000.0));
        assert_eq!(ms_to_cycles(1.0), us_to_cycles(1000.0));
        assert!((cycles_to_us(3200) - 1.0).abs() < 1e-12);
        assert!((cycles_to_ms(3_200_000) - 1.0).abs() < 1e-12);
    }
}
