//! The interface between the memory controller and a RowHammer tracker.
//!
//! A tracker instance covers **one memory channel** (it may keep per-rank
//! structures internally). The controller drives it with three kinds of
//! events and executes whatever [`TrackerAction`]s come back:
//!
//! * every ACT command → [`RowHammerTracker::on_activation`],
//! * every tREFI (3.9 µs) → [`RowHammerTracker::on_trefi`],
//! * every tREFW (32 ms) → [`RowHammerTracker::on_refresh_window`].
//!
//! Throttling defenses (BlockHammer) and per-ACT timing taxes (PRAC) hook
//! [`RowHammerTracker::activation_delay`], which the controller consults
//! *before* issuing an ACT.

use crate::addr::DramAddr;
use crate::req::SourceId;
use crate::time::Cycle;
use serde::{Deserialize, Serialize};

/// One row activation as observed by the memory controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Activation {
    /// The activated row (column field is meaningless here).
    pub addr: DramAddr,
    /// The core (or tracker) whose request caused the activation.
    pub source: SourceId,
    /// Cycle at which the ACT command was issued.
    pub cycle: Cycle,
}

/// The region a structure-reset sweep must refresh.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ResetScope {
    /// All rows of one rank (CoMeT resets per rank).
    Rank {
        /// Channel index.
        channel: u8,
        /// Rank index.
        rank: u8,
    },
    /// All rows in the channel (ABACUS's tracker is channel-wide).
    Channel {
        /// Channel index.
        channel: u8,
    },
}

/// What the memory controller must do on behalf of the tracker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrackerAction {
    /// Refresh the victim neighbours of this aggressor row (a VRR or DRFM
    /// command, per the system's mitigation configuration).
    MitigateRow(DramAddr),
    /// Read a tracker counter from reserved DRAM (Hydra RCC miss fill,
    /// START LLC miss).
    CounterRead(DramAddr),
    /// Write an evicted tracker counter back to reserved DRAM.
    CounterWrite(DramAddr),
    /// Refresh every row in scope and stall it meanwhile (CoMeT / ABACUS
    /// early reset; blocks the scope for ~2.4 ms in the paper).
    ResetSweep(ResetScope),
}

/// SRAM/CAM cost of a tracker per 32 GB memory channel (Table III).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct StorageOverhead {
    /// SRAM bytes.
    pub sram_bytes: u64,
    /// CAM bytes (content-addressable storage, more expensive per bit).
    pub cam_bytes: u64,
}

impl StorageOverhead {
    /// Creates a storage figure from SRAM and CAM byte counts.
    pub fn new(sram_bytes: u64, cam_bytes: u64) -> Self {
        Self { sram_bytes, cam_bytes }
    }

    /// SRAM size in KB (fractional).
    pub fn sram_kb(&self) -> f64 {
        self.sram_bytes as f64 / 1024.0
    }

    /// CAM size in KB (fractional).
    pub fn cam_kb(&self) -> f64 {
        self.cam_bytes as f64 / 1024.0
    }

    /// Estimated die area in mm², using the per-KB coefficients derived from
    /// the ABACUS paper's synthesis results, which the DAPPER paper reuses
    /// for Table III (CAM is ~3.6x denser in area cost than SRAM).
    pub fn die_area_mm2(&self) -> f64 {
        const SRAM_MM2_PER_KB: f64 = 0.000_78;
        const CAM_MM2_PER_KB: f64 = 0.002_25;
        self.sram_kb() * SRAM_MM2_PER_KB + self.cam_kb() * CAM_MM2_PER_KB
    }
}

/// A host-side RowHammer mitigation as seen by the memory controller.
///
/// Implementations must be deterministic given their construction seed; the
/// simulator relies on replayability.
///
/// `Send` is a supertrait because a tracker lives inside a channel shard
/// (`memctrl::ChannelShard`) that the sharded executor hands to worker
/// threads; trackers own their state (no `Rc`, no thread-local aliasing)
/// and shards are never aliased across threads, so this costs
/// implementations nothing beyond using `Arc` where a test double might
/// have reached for `Rc`.
pub trait RowHammerTracker: Send {
    /// Short display name ("Hydra", "DAPPER-H", ...).
    fn name(&self) -> &'static str;

    /// Observes one ACT; pushes any required actions onto `actions`.
    fn on_activation(&mut self, act: Activation, actions: &mut Vec<TrackerAction>);

    /// Called once per tREFI (after the periodic REF is scheduled).
    fn on_trefi(&mut self, _cycle: Cycle, _actions: &mut Vec<TrackerAction>) {}

    /// Called at every tREFW boundary (structures with per-window reset
    /// semantics clear here).
    fn on_refresh_window(&mut self, _cycle: Cycle, _actions: &mut Vec<TrackerAction>) {}

    /// Extra cycles the controller must wait before issuing an ACT to `addr`
    /// (throttling / per-ACT counter update tax). Zero for most trackers.
    fn activation_delay(&mut self, _addr: &DramAddr, _source: SourceId, _cycle: Cycle) -> Cycle {
        0
    }

    /// Storage cost per 32 GB channel (Table III).
    fn storage_overhead(&self) -> StorageOverhead;
}

/// A no-op tracker: the insecure baseline all normalized-performance numbers
/// are measured against.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullTracker;

impl RowHammerTracker for NullTracker {
    fn name(&self) -> &'static str {
        "none"
    }

    fn on_activation(&mut self, _act: Activation, _actions: &mut Vec<TrackerAction>) {}

    fn storage_overhead(&self) -> StorageOverhead {
        StorageOverhead::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_tracker_does_nothing() {
        let mut t = NullTracker;
        let mut actions = Vec::new();
        let act = Activation { addr: DramAddr::default(), source: SourceId(0), cycle: 0 };
        t.on_activation(act, &mut actions);
        t.on_trefi(100, &mut actions);
        t.on_refresh_window(200, &mut actions);
        assert!(actions.is_empty());
        assert_eq!(t.activation_delay(&DramAddr::default(), SourceId(0), 0), 0);
        assert_eq!(t.storage_overhead().sram_bytes, 0);
    }

    #[test]
    fn storage_overhead_area_model() {
        // DAPPER-H: 96 KB SRAM, no CAM -> ~0.075 mm^2 (Table III).
        let s = StorageOverhead::new(96 * 1024, 0);
        assert!((s.die_area_mm2() - 0.0749).abs() < 0.002, "{}", s.die_area_mm2());
        // CoMeT: 112 KB SRAM + 23 KB CAM -> ~0.139 mm^2.
        let c = StorageOverhead::new(112 * 1024, 23 * 1024);
        assert!((c.die_area_mm2() - 0.139).abs() < 0.004, "{}", c.die_area_mm2());
    }
}
