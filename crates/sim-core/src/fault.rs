//! Deterministic, seed-driven fault injection for the campaign stack.
//!
//! Resilience claims are only as good as the faults they were tested
//! against, so this module gives every infrastructure layer a common
//! *fault plane*: a [`FaultPlan`] is a seeded, declarative schedule of
//! faults ([`FaultRule`]s), armed into an [`Injector`] that the cache
//! store, the parallel runner, the shard pool, and `campaignd` consult at
//! well-known [`FaultSite`]s. Production paths hold an
//! `Option<Arc<Injector>>` that is `None` unless a chaos test armed a
//! plan, so the unarmed hook is a single branch on an `Option` — no
//! atomics touched, no rules scanned.
//!
//! Determinism is the contract that makes chaos tests assertable:
//!
//! * every probe of a site bumps a per-site atomic occurrence counter, so
//!   `nth`-triggered rules fire at a reproducible point in any *serial*
//!   site (cache reads, client streams);
//! * sites probed concurrently (sweep jobs, shard-pool lanes) pass an
//!   explicit index ([`Injector::check_indexed`]) and rules target that
//!   index, which is stable regardless of thread interleaving;
//! * every rule carries a fire *budget* (default: once), so "the fault
//!   happens exactly N times, then the retry succeeds" is expressible;
//! * payload damage (which byte a bit-flip hits) derives from the plan's
//!   seed, never from ambient randomness.
//!
//! ```
//! use sim_core::fault::{FaultAction, FaultPlan, FaultSite};
//!
//! let inj = FaultPlan::new(7).fail_cache_read_nth(1).arm();
//! assert_eq!(inj.check(FaultSite::CacheRead), None); // occurrence 0
//! assert_eq!(inj.check(FaultSite::CacheRead), Some(FaultAction::IoError));
//! assert_eq!(inj.check(FaultSite::CacheRead), None); // budget spent
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Where in the stack a fault can be injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSite {
    /// [`crate::cache::DiskStore::get`]'s disk path (front hits bypass it).
    CacheRead,
    /// [`crate::cache::DiskStore::put`].
    CacheWrite,
    /// A sweep job about to run (`sim::runner`); indexed by job position.
    JobRun,
    /// A shard-pool worker receiving a job (`sim::pool`); indexed by lane.
    ShardWorker,
    /// A `campaignd` connection streaming progress events to a client.
    ClientStream,
}

const SITE_COUNT: usize = 5;

fn site_idx(site: FaultSite) -> usize {
    match site {
        FaultSite::CacheRead => 0,
        FaultSite::CacheWrite => 1,
        FaultSite::JobRun => 2,
        FaultSite::ShardWorker => 3,
        FaultSite::ClientStream => 4,
    }
}

/// What happens when a rule fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Fail the operation with a synthetic IO error.
    IoError,
    /// Flip one payload byte (position derived from the plan seed).
    BitFlip,
    /// Truncate the payload mid-entry.
    Truncate,
    /// Crash after writing the temp file but before the rename commits.
    CrashBeforeRename,
    /// Panic inside the job body (exercises catch-unwind + retry).
    Panic,
    /// The worker thread exits after handing its work back untouched.
    KillWorker,
    /// Sever the client connection mid-stream.
    Disconnect,
}

/// When a rule fires, relative to its site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Trigger {
    /// On the `n`th probe of the site (0-based). Only meaningful for
    /// sites probed serially — under concurrency the occurrence order is
    /// scheduling-dependent.
    Nth(u64),
    /// When the caller-supplied index equals `n` (job index, worker
    /// lane). Stable under any thread interleaving.
    Index(u64),
    /// When the caller-supplied index is `>= n`. Used to "kill" the tail
    /// of a sweep deterministically.
    IndexAtLeast(u64),
    /// On every probe (combine with a budget to bound the blast radius).
    Always,
}

/// One scheduled fault: fire `action` at `site` when `trigger` matches,
/// at most `budget` times (`None` = unlimited).
#[derive(Debug, Clone, Copy)]
pub struct FaultRule {
    /// Where the fault strikes.
    pub site: FaultSite,
    /// What the fault does.
    pub action: FaultAction,
    /// When it fires.
    pub trigger: Trigger,
    /// How many times it may fire in total (`None` = every match).
    pub budget: Option<u64>,
}

/// A declarative, seeded schedule of faults. Build one per chaos
/// scenario, then [`FaultPlan::arm`] it into the layer under test.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    seed: u64,
    rules: Vec<FaultRule>,
}

impl FaultPlan {
    /// An empty plan with the given damage seed.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan { seed, rules: Vec::new() }
    }

    /// Adds an arbitrary rule.
    pub fn rule(mut self, rule: FaultRule) -> FaultPlan {
        self.rules.push(rule);
        self
    }

    fn once(self, site: FaultSite, action: FaultAction, trigger: Trigger) -> FaultPlan {
        self.rule(FaultRule { site, action, trigger, budget: Some(1) })
    }

    /// IO-error the `n`th disk read (0-based), once.
    pub fn fail_cache_read_nth(self, n: u64) -> FaultPlan {
        self.once(FaultSite::CacheRead, FaultAction::IoError, Trigger::Nth(n))
    }

    /// IO-error the `n`th write (0-based), once.
    pub fn fail_cache_write_nth(self, n: u64) -> FaultPlan {
        self.once(FaultSite::CacheWrite, FaultAction::IoError, Trigger::Nth(n))
    }

    /// Bit-flip the payload of the `n`th disk read, once.
    pub fn flip_cache_read_nth(self, n: u64) -> FaultPlan {
        self.once(FaultSite::CacheRead, FaultAction::BitFlip, Trigger::Nth(n))
    }

    /// Truncate the payload of the `n`th disk read, once.
    pub fn truncate_cache_read_nth(self, n: u64) -> FaultPlan {
        self.once(FaultSite::CacheRead, FaultAction::Truncate, Trigger::Nth(n))
    }

    /// Crash the `n`th write between temp-file write and rename, once.
    pub fn crash_cache_write_nth(self, n: u64) -> FaultPlan {
        self.once(FaultSite::CacheWrite, FaultAction::CrashBeforeRename, Trigger::Nth(n))
    }

    /// Panic sweep job `index` once (the retry then succeeds).
    pub fn panic_job_once(self, index: u64) -> FaultPlan {
        self.once(FaultSite::JobRun, FaultAction::Panic, Trigger::Index(index))
    }

    /// Panic sweep job `index` on every attempt (permanent quarantine).
    pub fn panic_job_always(self, index: u64) -> FaultPlan {
        self.rule(FaultRule {
            site: FaultSite::JobRun,
            action: FaultAction::Panic,
            trigger: Trigger::Index(index),
            budget: None,
        })
    }

    /// Panic every sweep job at index `>= index`, on every attempt —
    /// the in-process stand-in for killing a sweep partway through.
    pub fn halt_jobs_from(self, index: u64) -> FaultPlan {
        self.rule(FaultRule {
            site: FaultSite::JobRun,
            action: FaultAction::Panic,
            trigger: Trigger::IndexAtLeast(index),
            budget: None,
        })
    }

    /// Kill shard-pool worker `lane` once (it hands its shard back and
    /// exits; the coordinator advances inline and respawns the lane).
    pub fn kill_worker_once(self, lane: u64) -> FaultPlan {
        self.once(FaultSite::ShardWorker, FaultAction::KillWorker, Trigger::Index(lane))
    }

    /// Sever the `n`th client progress stream, once.
    pub fn disconnect_client_nth(self, n: u64) -> FaultPlan {
        self.once(FaultSite::ClientStream, FaultAction::Disconnect, Trigger::Nth(n))
    }

    /// Arms the plan: freezes the rules into a shareable [`Injector`].
    pub fn arm(self) -> Arc<Injector> {
        let fired = self.rules.iter().map(|_| AtomicU64::new(0)).collect();
        Arc::new(Injector {
            seed: self.seed,
            rules: self.rules,
            occurrences: std::array::from_fn(|_| AtomicU64::new(0)),
            fired,
        })
    }
}

/// An armed [`FaultPlan`]: thread-safe, probed via [`Injector::check`] /
/// [`Injector::check_indexed`] at each [`FaultSite`].
#[derive(Debug)]
pub struct Injector {
    seed: u64,
    rules: Vec<FaultRule>,
    occurrences: [AtomicU64; SITE_COUNT],
    fired: Vec<AtomicU64>,
}

impl Injector {
    /// Probes a serial site. Bumps the site's occurrence counter and
    /// returns the action of the first matching rule with budget left.
    pub fn check(&self, site: FaultSite) -> Option<FaultAction> {
        self.probe(site, None)
    }

    /// Probes a concurrent site with an explicit stable index (job
    /// position, worker lane).
    pub fn check_indexed(&self, site: FaultSite, index: u64) -> Option<FaultAction> {
        self.probe(site, Some(index))
    }

    fn probe(&self, site: FaultSite, index: Option<u64>) -> Option<FaultAction> {
        let occ = self.occurrences[site_idx(site)].fetch_add(1, Ordering::SeqCst);
        for (i, rule) in self.rules.iter().enumerate() {
            if rule.site != site {
                continue;
            }
            let matched = match rule.trigger {
                Trigger::Nth(n) => occ == n,
                Trigger::Index(n) => index == Some(n),
                Trigger::IndexAtLeast(n) => index.is_some_and(|ix| ix >= n),
                Trigger::Always => true,
            };
            if !matched {
                continue;
            }
            match rule.budget {
                None => {
                    self.fired[i].fetch_add(1, Ordering::SeqCst);
                    return Some(rule.action);
                }
                Some(budget) => {
                    // Claim one unit of budget atomically so concurrent
                    // probes cannot overspend it.
                    let claim =
                        self.fired[i].fetch_update(Ordering::SeqCst, Ordering::SeqCst, |fired| {
                            (fired < budget).then_some(fired + 1)
                        });
                    if claim.is_ok() {
                        return Some(rule.action);
                    }
                }
            }
        }
        None
    }

    /// The plan's damage seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Total fires across all rules targeting `site`.
    pub fn fired(&self, site: FaultSite) -> u64 {
        self.rules
            .iter()
            .zip(&self.fired)
            .filter(|(r, _)| r.site == site)
            .map(|(_, f)| f.load(Ordering::SeqCst))
            .sum()
    }

    /// Total fires across every rule.
    pub fn fired_total(&self) -> u64 {
        self.fired.iter().map(|f| f.load(Ordering::SeqCst)).sum()
    }

    /// How many times `site` has been probed (armed paths only).
    pub fn probes(&self, site: FaultSite) -> u64 {
        self.occurrences[site_idx(site)].load(Ordering::SeqCst)
    }

    /// Deterministically picks the payload byte a [`FaultAction::BitFlip`]
    /// damages: a seed-derived position, nudged to the nearest ASCII byte
    /// so the damaged text stays valid UTF-8 (the store works in `String`s;
    /// the flip must corrupt the checksum, not the encoding).
    pub fn corrupt(&self, payload: &str) -> String {
        let mut bytes = payload.as_bytes().to_vec();
        if bytes.is_empty() {
            return String::new();
        }
        let start = (crate::cache::checksum64(&self.seed.to_le_bytes()) as usize) % bytes.len();
        let pos = (start..bytes.len()).chain(0..start).find(|&i| bytes[i] < 0x80).unwrap_or(0);
        bytes[pos] ^= 0x01;
        String::from_utf8(bytes)
            .unwrap_or_else(|e| String::from_utf8_lossy(e.as_bytes()).into_owned())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nth_trigger_fires_once_at_the_right_occurrence() {
        let inj = FaultPlan::new(1).fail_cache_read_nth(2).arm();
        assert_eq!(inj.check(FaultSite::CacheRead), None);
        assert_eq!(inj.check(FaultSite::CacheRead), None);
        assert_eq!(inj.check(FaultSite::CacheRead), Some(FaultAction::IoError));
        assert_eq!(inj.check(FaultSite::CacheRead), None);
        assert_eq!(inj.fired(FaultSite::CacheRead), 1);
        assert_eq!(inj.probes(FaultSite::CacheRead), 4);
        // Other sites are untouched.
        assert_eq!(inj.check(FaultSite::CacheWrite), None);
        assert_eq!(inj.fired(FaultSite::CacheWrite), 0);
    }

    #[test]
    fn index_trigger_ignores_occurrence_order() {
        let inj = FaultPlan::new(1).panic_job_once(3).arm();
        // Whatever order a parallel sweep probes in, only index 3 fires.
        for ix in [5u64, 0, 3, 3, 1] {
            let hit = inj.check_indexed(FaultSite::JobRun, ix);
            if ix == 3 && inj.fired(FaultSite::JobRun) == 1 && hit.is_some() {
                assert_eq!(hit, Some(FaultAction::Panic));
            }
        }
        assert_eq!(inj.fired(FaultSite::JobRun), 1, "budget of one fire");
    }

    #[test]
    fn index_at_least_fires_unbounded() {
        let inj = FaultPlan::new(1).halt_jobs_from(2).arm();
        assert_eq!(inj.check_indexed(FaultSite::JobRun, 0), None);
        assert_eq!(inj.check_indexed(FaultSite::JobRun, 2), Some(FaultAction::Panic));
        assert_eq!(inj.check_indexed(FaultSite::JobRun, 7), Some(FaultAction::Panic));
        assert_eq!(inj.check_indexed(FaultSite::JobRun, 2), Some(FaultAction::Panic));
        assert_eq!(inj.fired(FaultSite::JobRun), 3);
    }

    #[test]
    fn budget_is_not_overspent_under_concurrency() {
        let inj = FaultPlan::new(1)
            .rule(FaultRule {
                site: FaultSite::CacheRead,
                action: FaultAction::IoError,
                trigger: Trigger::Always,
                budget: Some(3),
            })
            .arm();
        std::thread::scope(|s| {
            for _ in 0..8 {
                let inj = Arc::clone(&inj);
                s.spawn(move || {
                    for _ in 0..50 {
                        inj.check(FaultSite::CacheRead);
                    }
                });
            }
        });
        assert_eq!(inj.fired(FaultSite::CacheRead), 3);
        assert_eq!(inj.probes(FaultSite::CacheRead), 400);
    }

    #[test]
    fn corrupt_is_deterministic_and_breaks_the_checksum() {
        let inj = FaultPlan::new(42).arm();
        let payload = "{\"result\":123,\"unicode\":\"caf\u{e9}\"}";
        let damaged = inj.corrupt(payload);
        assert_ne!(damaged, payload);
        assert_eq!(damaged, inj.corrupt(payload), "same seed, same damage");
        assert_ne!(
            FaultPlan::new(43).arm().corrupt(payload),
            damaged,
            "different seed lands elsewhere (for this payload)"
        );
        assert_ne!(
            crate::cache::checksum64(damaged.as_bytes()),
            crate::cache::checksum64(payload.as_bytes())
        );
        assert_eq!(inj.corrupt(""), "");
    }

    #[test]
    fn empty_plan_never_fires() {
        let inj = FaultPlan::new(0).arm();
        for site in [
            FaultSite::CacheRead,
            FaultSite::CacheWrite,
            FaultSite::JobRun,
            FaultSite::ShardWorker,
            FaultSite::ClientStream,
        ] {
            assert_eq!(inj.check(site), None);
        }
        assert_eq!(inj.fired_total(), 0);
    }
}
