//! Composable observation layer: probes, window samples, and recorders.
//!
//! The simulator's observable surface used to be a single frozen
//! `RunStats` snapshot at the end of a run plus an all-or-nothing
//! `collect_events` flag. This module replaces that with a **probe API**:
//! any number of [`Probe`]s attach to a system run and tap three typed
//! streams —
//!
//! * **memory events** ([`crate::events::MemEvent`]): the raw command
//!   stream the ground-truth oracle audits; any probe with
//!   [`Probe::wants_events`] becomes a peer client of the same sink,
//! * **window samples** ([`WindowSample`]): per-window deltas of the
//!   run-stats-shaped counters (per-core retired instructions and core
//!   cycles, merged [`MemStats`]) emitted at fixed cycle boundaries —
//!   per-tREFW by default, configurable down to microsecond windows,
//! * **run lifecycle** ([`Probe::on_run_start`] / [`Probe::on_run_end`]).
//!
//! The hard invariant: **attaching probes must not perturb simulation.**
//! Probes only read; the engines produce bit-identical `RunStats` with
//! and without any combination of probes attached (the
//! `telemetry_equivalence` suite holds that line). A probe-free run pays
//! nothing: no events are buffered and no window bookkeeping happens
//! ([`Telemetry::none`] compiles down to the pre-probe fast path).
//!
//! Built-in recorders:
//!
//! * [`TimeSeriesRecorder`] — keeps every [`WindowSample`] (a windowed
//!   time series of `RunStats` deltas) with JSON/CSV export,
//! * [`SlowdownTrace`] — per-window benign IPC normalized to a reference
//!   run (the paper's x-axis for performance-attack transients), with
//!   time-to-max-slowdown and recovery scoring,
//! * [`MitigationLog`] — a timeline of mitigation work (victim refreshes
//!   and structure-reset sweeps),
//! * [`NullProbe`] — subscribes to nothing; useful as a placeholder and
//!   as the degenerate case of the perturbation-freedom contract.

use crate::events::MemEvent;
use crate::json::Json;
use crate::stats::MemStats;
use crate::time::{cycles_to_us, Cycle};
use std::any::Any;

/// Immutable facts about the run a probe is attached to, delivered once
/// via [`Probe::on_run_start`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunMeta {
    /// Tracker under test (display name).
    pub tracker: String,
    /// Number of cores.
    pub cores: usize,
    /// Number of DRAM channels.
    pub channels: usize,
    /// Window length in bus cycles for [`Probe::on_window`] samples.
    pub window_len: Cycle,
}

/// One telemetry window: deltas of every run-stats-shaped counter over
/// `[start, end)` bus cycles.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowSample {
    /// Zero-based window index.
    pub index: u64,
    /// First bus cycle covered (inclusive).
    pub start: Cycle,
    /// One past the last bus cycle covered. The final window of a run may
    /// be shorter than the configured length.
    pub end: Cycle,
    /// Instructions retired per core within the window.
    pub retired: Vec<u64>,
    /// Core-clock cycles elapsed per core within the window.
    pub core_cycles: Vec<u64>,
    /// Memory-system counters accumulated within the window, merged
    /// across channels.
    pub mem: MemStats,
}

impl WindowSample {
    /// Window length in bus cycles.
    pub fn len(&self) -> Cycle {
        self.end - self.start
    }

    /// True for a degenerate zero-length window (never emitted by the
    /// engines; guards downstream arithmetic).
    pub fn is_empty(&self) -> bool {
        self.end == self.start
    }

    /// IPC of core `i` within this window; 0.0 for an out-of-range index
    /// or an idle core.
    pub fn ipc(&self, i: usize) -> f64 {
        match (self.retired.get(i), self.core_cycles.get(i)) {
            (Some(&r), Some(&c)) if c > 0 => r as f64 / c as f64,
            _ => 0.0,
        }
    }

    /// Arithmetic-mean IPC over the given cores; 0.0 for an empty set.
    pub fn mean_ipc(&self, cores: &[usize]) -> f64 {
        if cores.is_empty() {
            return 0.0;
        }
        cores.iter().map(|&i| self.ipc(i)).sum::<f64>() / cores.len() as f64
    }

    /// Serializes the sample as a JSON object.
    pub fn to_json(&self) -> Json {
        let m = &self.mem;
        Json::obj([
            ("index", Json::count(self.index)),
            ("start_cycle", Json::count(self.start)),
            ("end_cycle", Json::count(self.end)),
            ("end_us", Json::num(cycles_to_us(self.end))),
            ("retired", Json::Arr(self.retired.iter().map(|&r| Json::count(r)).collect())),
            ("ipc", Json::Arr((0..self.retired.len()).map(|i| Json::num(self.ipc(i))).collect())),
            ("activations", Json::count(m.activations)),
            ("vrr_commands", Json::count(m.vrr_commands)),
            ("rfm_commands", Json::count(m.rfm_commands)),
            ("counter_ops", Json::count(m.counter_reads + m.counter_writes)),
            ("reset_sweeps", Json::count(m.reset_sweeps)),
            ("mitigation_block_cycles", Json::count(m.mitigation_block_cycles)),
            ("row_hit_rate", Json::num(m.row_hit_rate())),
        ])
    }
}

/// An observer attached to a system run.
///
/// Every hook has a no-op default, so a probe subscribes only to the
/// streams it declares via [`Probe::wants_events`] /
/// [`Probe::wants_windows`]; the engines skip all bookkeeping for
/// streams nobody wants. `Any` supertrait + [`Probe::as_any`] let
/// harness code recover a concrete recorder from a finished run.
pub trait Probe: Any {
    /// Short identifier for diagnostics and exports.
    fn name(&self) -> &'static str;

    /// True if this probe consumes raw [`MemEvent`]s (enables event
    /// capture in every channel controller).
    fn wants_events(&self) -> bool {
        false
    }

    /// True if this probe consumes [`WindowSample`]s (enables window
    /// bookkeeping in the engines).
    fn wants_windows(&self) -> bool {
        false
    }

    /// Called once before the first simulated cycle.
    fn on_run_start(&mut self, _meta: &RunMeta) {}

    /// Called for every memory event on `channel`, in issue order per
    /// channel (only when [`Probe::wants_events`] returns true).
    fn on_event(&mut self, _channel: u8, _ev: &MemEvent) {}

    /// Called at every window boundary, and once more for the final
    /// partial window (only when [`Probe::wants_windows`] returns true).
    fn on_window(&mut self, _sample: &WindowSample) {}

    /// Called once when the run loop exits, with the final cycle.
    fn on_run_end(&mut self, _final_cycle: Cycle) {}

    /// Upcast for recorder recovery (`probe.as_any().downcast_ref()`).
    fn as_any(&self) -> &dyn Any;

    /// Mutable upcast for recorder recovery.
    fn as_any_mut(&mut self) -> &mut dyn Any;

    /// Consuming upcast, for moving a recorder out of a finished run
    /// without cloning (`Box<dyn Probe>` → `Box<dyn Any>` → `Box<T>`).
    fn into_any(self: Box<Self>) -> Box<dyn Any>;
}

/// A probe subscribed to nothing. Attaching it is exactly the probe-free
/// fast path: no event capture, no window bookkeeping.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullProbe;

impl Probe for NullProbe {
    fn name(&self) -> &'static str {
        "null"
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

/// The telemetry configuration a system run is built with: the attached
/// probes plus the window length.
#[derive(Default)]
pub struct Telemetry {
    probes: Vec<Box<dyn Probe>>,
    oracle: bool,
    window_len: Option<Cycle>,
}

impl Telemetry {
    /// No probes, no oracle: the zero-overhead fast path.
    pub fn none() -> Self {
        Self::default()
    }

    /// Attaches a probe.
    pub fn probe(mut self, p: impl Probe) -> Self {
        self.probes.push(Box::new(p));
        self
    }

    /// Requests the ground-truth RowHammer oracle (the harness attaches
    /// it as an event-sink probe like any other client).
    pub fn oracle(mut self, on: bool) -> Self {
        self.oracle = on;
        self
    }

    /// Overrides the window length (default: one tREFW).
    ///
    /// # Panics
    ///
    /// Panics on a zero length.
    pub fn window_len(mut self, cycles: Cycle) -> Self {
        assert!(cycles > 0, "telemetry window length must be nonzero");
        self.window_len = Some(cycles);
        self
    }

    /// Whether the oracle was requested.
    pub fn oracle_requested(&self) -> bool {
        self.oracle
    }

    /// The configured window length, if overridden.
    pub fn window_len_override(&self) -> Option<Cycle> {
        self.window_len
    }

    /// Consumes the configuration into its probe list.
    pub fn into_probes(self) -> Vec<Box<dyn Probe>> {
        self.probes
    }
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("probes", &self.probes.iter().map(|p| p.name()).collect::<Vec<_>>())
            .field("oracle", &self.oracle)
            .field("window_len", &self.window_len)
            .finish()
    }
}

// ---------------------------------------------------------------------------
// TimeSeriesRecorder
// ---------------------------------------------------------------------------

/// Records every [`WindowSample`]: a windowed time series of the
/// run-stats-shaped counters.
#[derive(Debug, Clone, Default)]
pub struct TimeSeriesRecorder {
    meta: Option<RunMeta>,
    samples: Vec<WindowSample>,
}

impl TimeSeriesRecorder {
    /// An empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// The recorded samples, in window order.
    pub fn samples(&self) -> &[WindowSample] {
        &self.samples
    }

    /// Consumes the recorder into its samples.
    pub fn into_samples(self) -> Vec<WindowSample> {
        self.samples
    }

    /// The run metadata, once the run has started.
    pub fn meta(&self) -> Option<&RunMeta> {
        self.meta.as_ref()
    }

    /// Serializes the series as a JSON array of window objects.
    pub fn to_json(&self) -> Json {
        Json::Arr(self.samples.iter().map(WindowSample::to_json).collect())
    }

    /// Serializes the series as CSV (header + one line per window).
    pub fn to_csv(&self) -> String {
        let cores = self.samples.first().map_or(0, |s| s.retired.len());
        let mut out = String::from("window,start_cycle,end_cycle,end_us");
        for i in 0..cores {
            out.push_str(&format!(",ipc_core{i}"));
        }
        out.push_str(
            ",activations,vrr,rfm,counter_ops,reset_sweeps,mitigation_block_cycles,row_hit_rate\n",
        );
        for s in &self.samples {
            out.push_str(&format!("{},{},{},{:.3}", s.index, s.start, s.end, cycles_to_us(s.end)));
            for i in 0..cores {
                out.push_str(&format!(",{:.6}", s.ipc(i)));
            }
            let m = &s.mem;
            out.push_str(&format!(
                ",{},{},{},{},{},{},{:.6}\n",
                m.activations,
                m.vrr_commands,
                m.rfm_commands,
                m.counter_reads + m.counter_writes,
                m.reset_sweeps,
                m.mitigation_block_cycles,
                m.row_hit_rate(),
            ));
        }
        out
    }
}

impl Probe for TimeSeriesRecorder {
    fn name(&self) -> &'static str {
        "time-series"
    }
    fn wants_windows(&self) -> bool {
        true
    }
    fn on_run_start(&mut self, meta: &RunMeta) {
        self.meta = Some(meta.clone());
    }
    fn on_window(&mut self, sample: &WindowSample) {
        self.samples.push(sample.clone());
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

// ---------------------------------------------------------------------------
// SlowdownTrace
// ---------------------------------------------------------------------------

/// What a [`SlowdownTrace`] normalizes against.
#[derive(Debug, Clone, PartialEq)]
pub enum SlowdownReference {
    /// One IPC per core, applied to every window (an end-of-run reference
    /// mean — the shape shared-reference sweeps have available).
    Flat(Vec<f64>),
    /// Per-window reference samples from a reference run recorded with a
    /// [`TimeSeriesRecorder`] under the same window length. Windows past
    /// the end of the reference fall back to its last sample.
    PerWindow(Vec<WindowSample>),
}

/// One point of a slowdown trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SlowdownPoint {
    /// Window index.
    pub index: u64,
    /// Window end cycle (the sample's timestamp).
    pub end: Cycle,
    /// Mean benign IPC normalized to the reference for this window
    /// (1.0 = no slowdown; lower = the attack is biting).
    pub normalized_ipc: f64,
}

impl SlowdownPoint {
    /// Benign slowdown factor (`1 / normalized_ipc`, saturating).
    pub fn slowdown(&self) -> f64 {
        1.0 / self.normalized_ipc.max(1e-6)
    }
}

/// Per-window benign IPC normalized to a reference run — the transient
/// the paper plots for performance attacks: how fast a tracker degrades
/// under attack and whether it recovers.
///
/// Cores with a zero reference IPC in a window carry no signal and are
/// excluded from both numerator and denominator (mirroring
/// `normalized_performance`); a window where no benign core has a usable
/// reference records `normalized_ipc = 1.0`.
#[derive(Debug, Clone, PartialEq)]
pub struct SlowdownTrace {
    reference: SlowdownReference,
    benign: Vec<usize>,
    points: Vec<SlowdownPoint>,
}

impl SlowdownTrace {
    /// A trace normalizing against a flat per-core reference IPC.
    pub fn flat(reference_ipc: Vec<f64>, benign: Vec<usize>) -> Self {
        Self { reference: SlowdownReference::Flat(reference_ipc), benign, points: Vec::new() }
    }

    /// A trace normalizing window-by-window against a recorded reference
    /// series.
    pub fn per_window(reference: Vec<WindowSample>, benign: Vec<usize>) -> Self {
        Self { reference: SlowdownReference::PerWindow(reference), benign, points: Vec::new() }
    }

    fn reference_ipc(&self, window: usize, core: usize) -> f64 {
        match &self.reference {
            SlowdownReference::Flat(ipc) => ipc.get(core).copied().unwrap_or(0.0),
            SlowdownReference::PerWindow(samples) => match samples.get(window) {
                Some(s) => s.ipc(core),
                None => samples.last().map_or(0.0, |s| s.ipc(core)),
            },
        }
    }

    /// Reassembles a trace from previously recorded parts (the shape a
    /// deserialized run cache entry holds). The inverse of reading
    /// [`Self::reference`], [`Self::benign_cores`], and [`Self::points`].
    pub fn from_parts(
        reference: SlowdownReference,
        benign: Vec<usize>,
        points: Vec<SlowdownPoint>,
    ) -> Self {
        Self { reference, benign, points }
    }

    /// What this trace normalizes against.
    pub fn reference(&self) -> &SlowdownReference {
        &self.reference
    }

    /// The recorded points, in window order.
    pub fn points(&self) -> &[SlowdownPoint] {
        &self.points
    }

    /// The benign core set being traced.
    pub fn benign_cores(&self) -> &[usize] {
        &self.benign
    }

    /// The worst (lowest normalized IPC) point, if any window was
    /// recorded.
    pub fn max_slowdown_point(&self) -> Option<SlowdownPoint> {
        self.points.iter().copied().min_by(|a, b| a.normalized_ipc.total_cmp(&b.normalized_ipc))
    }

    /// Cycles from run start until the end of the worst window — how fast
    /// the attack reaches its full effect.
    pub fn time_to_max_slowdown(&self) -> Option<Cycle> {
        self.max_slowdown_point().map(|p| p.end)
    }

    /// Cycles from the worst window's end until benign IPC first climbs
    /// back above `threshold` of the reference; `None` if it never
    /// recovers within the trace.
    pub fn recovery_window(&self, threshold: f64) -> Option<Cycle> {
        let worst = self.max_slowdown_point()?;
        self.points
            .iter()
            .find(|p| p.index > worst.index && p.normalized_ipc >= threshold)
            .map(|p| p.end - worst.end)
    }

    /// Serializes the trace as a JSON array of `{window, end_us,
    /// normalized_ipc, slowdown}` objects.
    pub fn to_json(&self) -> Json {
        Json::Arr(
            self.points
                .iter()
                .map(|p| {
                    Json::obj([
                        ("window", Json::count(p.index)),
                        ("end_us", Json::num(cycles_to_us(p.end))),
                        ("normalized_ipc", Json::num(p.normalized_ipc)),
                        ("slowdown", Json::num(p.slowdown())),
                    ])
                })
                .collect(),
        )
    }

    /// Serializes the trace as CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("window,end_us,normalized_ipc,slowdown\n");
        for p in &self.points {
            out.push_str(&format!(
                "{},{:.3},{:.6},{:.6}\n",
                p.index,
                cycles_to_us(p.end),
                p.normalized_ipc,
                p.slowdown()
            ));
        }
        out
    }
}

impl Probe for SlowdownTrace {
    fn name(&self) -> &'static str {
        "slowdown-trace"
    }
    fn wants_windows(&self) -> bool {
        true
    }
    fn on_window(&mut self, sample: &WindowSample) {
        let w = sample.index as usize;
        let mut sum = 0.0;
        let mut counted = 0u32;
        for &core in &self.benign {
            let r = self.reference_ipc(w, core);
            if r > 0.0 {
                sum += sample.ipc(core) / r;
                counted += 1;
            }
        }
        let normalized_ipc = if counted == 0 { 1.0 } else { sum / f64::from(counted) };
        self.points.push(SlowdownPoint { index: sample.index, end: sample.end, normalized_ipc });
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

// ---------------------------------------------------------------------------
// MitigationLog
// ---------------------------------------------------------------------------

/// What kind of mitigation work a [`MitigationRecord`] describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MitigationKindTag {
    /// Victim-row refresh around one aggressor (VRR / RFM flavours).
    VictimRefresh {
        /// The aggressor row.
        row: u32,
        /// Rows refreshed on each side.
        blast_radius: u8,
    },
    /// A full structure-reset sweep.
    Sweep,
}

/// One mitigation action on the timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MitigationRecord {
    /// Completion cycle.
    pub cycle: Cycle,
    /// Channel the work ran on.
    pub channel: u8,
    /// What happened.
    pub kind: MitigationKindTag,
}

impl MitigationRecord {
    /// Serializes the record as a JSON object — the single schema every
    /// mitigation-timeline export uses (`row` is `null` for sweeps).
    pub fn to_json(&self) -> Json {
        let (kind, row) = match self.kind {
            MitigationKindTag::VictimRefresh { row, .. } => {
                ("victim-refresh", Json::count(row as u64))
            }
            MitigationKindTag::Sweep => ("sweep", Json::Null),
        };
        Json::obj([
            ("cycle", Json::count(self.cycle)),
            ("us", Json::num(cycles_to_us(self.cycle))),
            ("channel", Json::count(self.channel as u64)),
            ("kind", Json::str(kind)),
            ("row", row),
        ])
    }
}

/// Records the mitigation timeline: every victim refresh and reset sweep,
/// with completion cycles — the raw material for time-between-mitigations
/// and blocking-burst analyses.
#[derive(Debug, Clone, Default)]
pub struct MitigationLog {
    records: Vec<MitigationRecord>,
}

impl MitigationLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// The recorded mitigations, in completion order per channel.
    pub fn records(&self) -> &[MitigationRecord] {
        &self.records
    }

    /// Victim-refresh count.
    pub fn victim_refreshes(&self) -> usize {
        self.records
            .iter()
            .filter(|r| matches!(r.kind, MitigationKindTag::VictimRefresh { .. }))
            .count()
    }

    /// Reset-sweep count.
    pub fn sweeps(&self) -> usize {
        self.records.iter().filter(|r| matches!(r.kind, MitigationKindTag::Sweep)).count()
    }

    /// Serializes the log as a JSON array.
    pub fn to_json(&self) -> Json {
        Json::Arr(self.records.iter().map(MitigationRecord::to_json).collect())
    }
}

impl Probe for MitigationLog {
    fn name(&self) -> &'static str {
        "mitigation-log"
    }
    fn wants_events(&self) -> bool {
        true
    }
    fn on_event(&mut self, channel: u8, ev: &MemEvent) {
        match *ev {
            MemEvent::VictimsRefreshed { aggressor, blast_radius, cycle } => {
                self.records.push(MitigationRecord {
                    cycle,
                    channel,
                    kind: MitigationKindTag::VictimRefresh { row: aggressor.row, blast_radius },
                });
            }
            MemEvent::SweepRefreshed { cycle, .. } => {
                self.records.push(MitigationRecord {
                    cycle,
                    channel,
                    kind: MitigationKindTag::Sweep,
                });
            }
            MemEvent::Activate { .. }
            | MemEvent::RefreshWindowEnd { .. }
            | MemEvent::ReadCompleted { .. } => {}
        }
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

// ---------------------------------------------------------------------------
// LatencyProbe
// ---------------------------------------------------------------------------

/// One observed demand-read round trip: the request's controller arrival
/// and data-return cycles, as seen through [`MemEvent::ReadCompleted`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencySample {
    /// Channel the read was served on.
    pub channel: u8,
    /// Physical address read.
    pub phys: crate::addr::PhysAddr,
    /// Controller arrival cycle.
    pub arrival: Cycle,
    /// Data-return cycle.
    pub done: Cycle,
}

impl LatencySample {
    /// Inject-to-complete latency in bus cycles — the quantity a
    /// timing-side-channel attacker measures from software.
    pub fn latency(&self) -> Cycle {
        self.done - self.arrival
    }
}

/// Records per-request issue→completion latency for one requesting agent
/// — the software-observable timing side channel (Spoiler/DRAMA-style
/// row-buffer-conflict probing taps exactly this view).
///
/// The probe deliberately exposes nothing a real attacker could not see:
/// only the latencies of the *configured source's own* reads, never DRAM
/// coordinates, tracker state, or other agents' traffic. Like every
/// probe, it is perturbation-free — attaching it cannot change
/// `RunStats` (the `telemetry_equivalence` suite covers it).
#[derive(Debug, Clone)]
pub struct LatencyProbe {
    source: crate::req::SourceId,
    samples: Vec<LatencySample>,
}

impl LatencyProbe {
    /// A probe observing the given requester's demand reads.
    pub fn new(source: crate::req::SourceId) -> Self {
        Self { source, samples: Vec::new() }
    }

    /// The observed requester.
    pub fn source(&self) -> crate::req::SourceId {
        self.source
    }

    /// The recorded samples, in completion-issue order per channel.
    pub fn samples(&self) -> &[LatencySample] {
        &self.samples
    }

    /// Consumes the probe into its samples.
    pub fn into_samples(self) -> Vec<LatencySample> {
        self.samples
    }
}

impl Probe for LatencyProbe {
    fn name(&self) -> &'static str {
        "latency"
    }
    fn wants_events(&self) -> bool {
        true
    }
    fn on_event(&mut self, channel: u8, ev: &MemEvent) {
        if let MemEvent::ReadCompleted { source, phys, arrival, cycle } = *ev {
            if source == self.source {
                self.samples.push(LatencySample { channel, phys, arrival, done: cycle });
            }
        }
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::DramAddr;

    fn sample(
        index: u64,
        start: Cycle,
        end: Cycle,
        retired: Vec<u64>,
        cycles: Vec<u64>,
    ) -> WindowSample {
        WindowSample { index, start, end, retired, core_cycles: cycles, mem: MemStats::default() }
    }

    #[test]
    fn window_sample_ipc_is_bounds_safe() {
        let s = sample(0, 0, 100, vec![50, 0], vec![100, 0]);
        assert_eq!(s.ipc(0), 0.5);
        assert_eq!(s.ipc(1), 0.0, "idle core");
        assert_eq!(s.ipc(7), 0.0, "out of range");
        assert_eq!(s.mean_ipc(&[]), 0.0);
        assert_eq!(s.len(), 100);
        assert!(!s.is_empty());
    }

    #[test]
    fn time_series_recorder_keeps_samples_and_exports() {
        let mut rec = TimeSeriesRecorder::new();
        rec.on_run_start(&RunMeta { tracker: "t".into(), cores: 2, channels: 1, window_len: 100 });
        rec.on_window(&sample(0, 0, 100, vec![10, 20], vec![100, 100]));
        rec.on_window(&sample(1, 100, 150, vec![5, 5], vec![50, 50]));
        assert_eq!(rec.samples().len(), 2);
        assert_eq!(rec.meta().unwrap().window_len, 100);
        let json = rec.to_json().render();
        assert!(json.contains("\"index\":0"));
        assert!(Json::parse(&json).is_ok());
        let csv = rec.to_csv();
        assert_eq!(csv.lines().count(), 3, "header + 2 windows");
        assert!(csv.starts_with("window,"));
        assert!(csv.contains("ipc_core1"));
    }

    #[test]
    fn slowdown_trace_normalizes_per_window() {
        let reference = vec![sample(0, 0, 100, vec![100, 100], vec![100, 100])]; // ref IPC 1.0
        let mut tr = SlowdownTrace::per_window(reference, vec![0, 1]);
        tr.on_window(&sample(0, 0, 100, vec![50, 100], vec![100, 100]));
        // Window 1 falls past the reference series: falls back to its last
        // sample.
        tr.on_window(&sample(1, 100, 200, vec![100, 100], vec![100, 100]));
        assert_eq!(tr.points().len(), 2);
        assert!((tr.points()[0].normalized_ipc - 0.75).abs() < 1e-12);
        assert!((tr.points()[1].normalized_ipc - 1.0).abs() < 1e-12);
        let worst = tr.max_slowdown_point().unwrap();
        assert_eq!(worst.index, 0);
        assert_eq!(tr.time_to_max_slowdown(), Some(100));
        assert_eq!(tr.recovery_window(0.9), Some(100), "recovers one window later");
        assert!((worst.slowdown() - 1.0 / 0.75).abs() < 1e-9);
    }

    #[test]
    fn slowdown_trace_flat_reference_and_no_recovery() {
        let mut tr = SlowdownTrace::flat(vec![1.0, 0.0], vec![0, 1]);
        tr.on_window(&sample(0, 0, 100, vec![40, 0], vec![100, 0]));
        tr.on_window(&sample(1, 100, 200, vec![30, 0], vec![100, 0]));
        // Core 1 has a zero reference: excluded from both sides.
        assert!((tr.points()[0].normalized_ipc - 0.4).abs() < 1e-12);
        assert_eq!(tr.max_slowdown_point().unwrap().index, 1);
        assert_eq!(tr.recovery_window(0.9), None, "never climbs back");
        assert!(Json::parse(&tr.to_json().render()).is_ok());
        assert!(tr.to_csv().starts_with("window,end_us,"));
    }

    #[test]
    fn mitigation_log_filters_mitigation_events() {
        let mut log = MitigationLog::new();
        let addr = DramAddr::new(0, 0, 0, 0, 500, 0);
        log.on_event(0, &MemEvent::Activate { addr, cycle: 1 });
        log.on_event(0, &MemEvent::VictimsRefreshed { aggressor: addr, blast_radius: 1, cycle: 2 });
        log.on_event(
            1,
            &MemEvent::SweepRefreshed {
                scope: crate::tracker::ResetScope::Rank { channel: 1, rank: 0 },
                cycle: 3,
            },
        );
        log.on_event(0, &MemEvent::RefreshWindowEnd { cycle: 4 });
        assert_eq!(log.records().len(), 2, "ACTs and window ends are not mitigations");
        assert_eq!(log.victim_refreshes(), 1);
        assert_eq!(log.sweeps(), 1);
        assert!(Json::parse(&log.to_json().render()).is_ok());
    }

    #[test]
    fn latency_probe_filters_to_its_source() {
        use crate::addr::PhysAddr;
        use crate::req::SourceId;
        let mut probe = LatencyProbe::new(SourceId(3));
        let addr = DramAddr::new(0, 0, 0, 0, 7, 0);
        probe.on_event(0, &MemEvent::Activate { addr, cycle: 1 });
        probe.on_event(
            0,
            &MemEvent::ReadCompleted {
                source: SourceId(3),
                phys: PhysAddr(0x1000),
                arrival: 10,
                cycle: 52,
            },
        );
        probe.on_event(
            1,
            &MemEvent::ReadCompleted {
                source: SourceId(0),
                phys: PhysAddr(0x2000),
                arrival: 11,
                cycle: 40,
            },
        );
        assert_eq!(probe.source(), SourceId(3));
        assert_eq!(probe.samples().len(), 1, "other sources' reads are invisible");
        let s = probe.samples()[0];
        assert_eq!((s.channel, s.phys, s.latency()), (0, PhysAddr(0x1000), 42));
        assert_eq!(probe.into_samples().len(), 1);
    }

    #[test]
    fn telemetry_config_carries_probes_and_flags() {
        let t = Telemetry::none();
        assert!(!t.oracle_requested());
        assert!(t.into_probes().is_empty());
        let t = Telemetry::none()
            .probe(TimeSeriesRecorder::new())
            .probe(NullProbe)
            .oracle(true)
            .window_len(64);
        assert!(t.oracle_requested());
        assert_eq!(t.window_len_override(), Some(64));
        let probes = t.into_probes();
        assert_eq!(probes.len(), 2);
        assert!(probes[0].wants_windows());
        assert!(!probes[1].wants_windows() && !probes[1].wants_events());
    }

    #[test]
    fn recorders_are_recoverable_through_as_any() {
        let mut rec: Box<dyn Probe> = Box::new(TimeSeriesRecorder::new());
        rec.on_window(&sample(0, 0, 10, vec![1], vec![10]));
        let back = rec.as_any().downcast_ref::<TimeSeriesRecorder>().unwrap();
        assert_eq!(back.samples().len(), 1);
        assert!(rec.as_any().downcast_ref::<MitigationLog>().is_none());
    }
}
