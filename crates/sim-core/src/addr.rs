//! Physical and DRAM addressing.
//!
//! The simulated machine exposes a flat physical address space that the
//! memory controller decodes into DRAM coordinates
//! (channel / rank / bank group / bank / row / column) according to a
//! [`Geometry`]. Trackers additionally need a *flat row index within a rank*
//! — the 21-bit domain (2M rows for the baseline) that DAPPER's secure hash
//! permutes — provided by [`Geometry::rank_row_index`].

use serde::{Deserialize, Serialize};

/// A flat physical byte address.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct PhysAddr(pub u64);

impl PhysAddr {
    /// Returns the 64-byte cache-line index of this address.
    pub fn line(self) -> u64 {
        self.0 >> 6
    }
}

impl std::fmt::Display for PhysAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

/// DRAM coordinates of one column access.
///
/// `row` identifies a DRAM row within one bank; `col` is the 64-byte column
/// (cache line) within the row.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct DramAddr {
    /// Channel index.
    pub channel: u8,
    /// Rank index within the channel.
    pub rank: u8,
    /// Bank group within the rank.
    pub bank_group: u8,
    /// Bank within the bank group.
    pub bank: u8,
    /// Row within the bank.
    pub row: u32,
    /// 64-byte column within the row.
    pub col: u16,
}

impl DramAddr {
    /// Creates DRAM coordinates from explicit components.
    pub fn new(channel: u8, rank: u8, bank_group: u8, bank: u8, row: u32, col: u16) -> Self {
        Self { channel, rank, bank_group, bank, row, col }
    }

    /// Returns the same coordinates with a different row.
    pub fn with_row(mut self, row: u32) -> Self {
        self.row = row;
        self
    }
}

impl std::fmt::Display for DramAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "ch{}/rk{}/bg{}/bk{}/row{:#x}/col{}",
            self.channel, self.rank, self.bank_group, self.bank, self.row, self.col
        )
    }
}

/// DRAM organisation (Table I of the paper).
///
/// The baseline system is a dual-channel, dual-rank DDR5 configuration with
/// 8 bank groups x 4 banks and 64K rows of 8 KB per bank: 32 GB per channel,
/// 64 GB total, 2M rows per rank.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Geometry {
    /// Number of memory channels.
    pub channels: u8,
    /// Ranks per channel.
    pub ranks: u8,
    /// Bank groups per rank.
    pub bank_groups: u8,
    /// Banks per bank group.
    pub banks_per_group: u8,
    /// Rows per bank.
    pub rows_per_bank: u32,
    /// Row size in bytes.
    pub row_bytes: u32,
}

impl Geometry {
    /// The paper's baseline: 2 channels x 2 ranks x 8 bank groups x 4 banks,
    /// 64K rows of 8 KB per bank (Table I).
    pub fn paper_baseline() -> Self {
        Self {
            channels: 2,
            ranks: 2,
            bank_groups: 8,
            banks_per_group: 4,
            rows_per_bank: 64 * 1024,
            row_bytes: 8 * 1024,
        }
    }

    /// The enlarged system of Section III-D: eight channels, 64 GB each.
    pub fn eight_channel() -> Self {
        Self { channels: 8, ..Self::paper_baseline() }
    }

    /// The server-class preset name used by the `[system]` spec section
    /// (`geometry = "enlarged-8ch"`): the Section III-D enlarged system.
    /// Alias of [`Geometry::eight_channel`], named for what it selects
    /// rather than how it differs from the baseline.
    pub fn enlarged_8ch() -> Self {
        Self::eight_channel()
    }

    /// A miniature geometry for fast unit tests (2 ch x 1 rank x 2x2 banks,
    /// 1K rows). Not representative of any real part.
    pub fn tiny() -> Self {
        Self {
            channels: 2,
            ranks: 1,
            bank_groups: 2,
            banks_per_group: 2,
            rows_per_bank: 1024,
            row_bytes: 8 * 1024,
        }
    }

    /// Banks per rank.
    pub fn banks_per_rank(&self) -> u32 {
        self.bank_groups as u32 * self.banks_per_group as u32
    }

    /// Rows per rank (the domain DAPPER's secure hash permutes; 2M in the
    /// baseline).
    pub fn rows_per_rank(&self) -> u64 {
        self.banks_per_rank() as u64 * self.rows_per_bank as u64
    }

    /// Rows per channel.
    pub fn rows_per_channel(&self) -> u64 {
        self.rows_per_rank() * self.ranks as u64
    }

    /// Total rows in the system.
    pub fn total_rows(&self) -> u64 {
        self.rows_per_channel() * self.channels as u64
    }

    /// 64-byte columns per row.
    pub fn cols_per_row(&self) -> u16 {
        (self.row_bytes / 64) as u16
    }

    /// Total capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.total_rows() * self.row_bytes as u64
    }

    /// Bytes per channel.
    pub fn channel_bytes(&self) -> u64 {
        self.capacity_bytes() / self.channels as u64
    }

    /// Number of bits needed to index a row within a rank.
    pub fn rank_row_bits(&self) -> u32 {
        let rows = self.rows_per_rank();
        assert!(rows.is_power_of_two(), "rank row count must be a power of two");
        rows.trailing_zeros()
    }

    /// Global bank index within a rank (0..banks_per_rank).
    pub fn bank_in_rank(&self, addr: &DramAddr) -> u32 {
        addr.bank_group as u32 * self.banks_per_group as u32 + addr.bank as u32
    }

    /// Flat row index within a rank: `bank_in_rank * rows_per_bank + row`.
    ///
    /// This is the n-bit value (21 bits for the baseline) that DAPPER's LLBC
    /// encrypts.
    pub fn rank_row_index(&self, addr: &DramAddr) -> u64 {
        self.bank_in_rank(addr) as u64 * self.rows_per_bank as u64 + addr.row as u64
    }

    /// Inverse of [`Self::rank_row_index`]: reconstructs full coordinates from
    /// a flat per-rank row index (column set to zero).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range for this geometry.
    pub fn addr_from_rank_row_index(&self, channel: u8, rank: u8, index: u64) -> DramAddr {
        assert!(index < self.rows_per_rank(), "row index {index} out of range");
        let bank_flat = (index / self.rows_per_bank as u64) as u32;
        let row = (index % self.rows_per_bank as u64) as u32;
        DramAddr {
            channel,
            rank,
            bank_group: (bank_flat / self.banks_per_group as u32) as u8,
            bank: (bank_flat % self.banks_per_group as u32) as u8,
            row,
            col: 0,
        }
    }

    /// Decodes a physical address into DRAM coordinates.
    ///
    /// Bit layout, LSB first: 6 offset bits (64-byte line), channel bits,
    /// column bits, bank bits, bank-group bits, rank bits, row bits. This
    /// stripes consecutive lines across channels, then across the open row —
    /// the usual open-page-friendly mapping used by Ramulator's baseline
    /// (`RoBaRaCoCh`).
    pub fn decode(&self, p: PhysAddr) -> DramAddr {
        let mut a = p.0 >> 6;
        let take = |a: &mut u64, count: u32| -> u64 {
            if count == 0 {
                return 0;
            }
            let v = *a & ((1u64 << count) - 1);
            *a >>= count;
            v
        };
        let channel = take(&mut a, log2(self.channels as u64));
        let col = take(&mut a, log2(self.cols_per_row() as u64));
        let bank = take(&mut a, log2(self.banks_per_group as u64));
        let bank_group = take(&mut a, log2(self.bank_groups as u64));
        let rank = take(&mut a, log2(self.ranks as u64));
        let row = take(&mut a, log2(self.rows_per_bank as u64));
        DramAddr {
            channel: channel as u8,
            rank: rank as u8,
            bank_group: bank_group as u8,
            bank: bank as u8,
            row: row as u32,
            col: col as u16,
        }
    }

    /// Encodes DRAM coordinates back into a physical address (inverse of
    /// [`Self::decode`]).
    pub fn encode(&self, d: &DramAddr) -> PhysAddr {
        let mut a: u64 = 0;
        let mut shift = 6u32;
        let mut put = |val: u64, count: u32| {
            if count > 0 {
                a |= val << shift;
                shift += count;
            }
        };
        put(d.channel as u64, log2(self.channels as u64));
        put(d.col as u64, log2(self.cols_per_row() as u64));
        put(d.bank as u64, log2(self.banks_per_group as u64));
        put(d.bank_group as u64, log2(self.bank_groups as u64));
        put(d.rank as u64, log2(self.ranks as u64));
        put(d.row as u64, log2(self.rows_per_bank as u64));
        PhysAddr(a)
    }
}

fn log2(v: u64) -> u32 {
    debug_assert!(v.is_power_of_two(), "geometry dimensions must be powers of two");
    v.trailing_zeros()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_matches_table_one() {
        let g = Geometry::paper_baseline();
        assert_eq!(g.banks_per_rank(), 32);
        assert_eq!(g.rows_per_rank(), 2 * 1024 * 1024);
        assert_eq!(g.rank_row_bits(), 21);
        assert_eq!(g.capacity_bytes(), 64 * (1u64 << 30));
        assert_eq!(g.channel_bytes(), 32 * (1u64 << 30));
        assert_eq!(g.cols_per_row(), 128);
    }

    #[test]
    fn rank_row_index_round_trip() {
        let g = Geometry::paper_baseline();
        for (bg, bk, row) in [(0, 0, 0), (7, 3, 65535), (3, 1, 12345), (5, 2, 1)] {
            let a = DramAddr::new(1, 1, bg, bk, row, 0);
            let idx = g.rank_row_index(&a);
            let back = g.addr_from_rank_row_index(1, 1, idx);
            assert_eq!(back, a);
        }
    }

    #[test]
    fn decode_encode_round_trip() {
        let g = Geometry::paper_baseline();
        // The baseline addresses 64 GB = 36 bits; stay in range.
        for raw in [0u64, 64, 4096, 0xea_dbee_fac0 & 0xf_ffff_ffc0, 0x7_ffff_ffc0] {
            let p = PhysAddr(raw);
            let d = g.decode(p);
            assert_eq!(g.encode(&d), p, "address {raw:#x}");
        }
    }

    #[test]
    fn consecutive_lines_stripe_channels_then_columns() {
        let g = Geometry::paper_baseline();
        let a = g.decode(PhysAddr(0));
        let b = g.decode(PhysAddr(64));
        let c = g.decode(PhysAddr(128));
        assert_ne!(a.channel, b.channel, "adjacent lines alternate channels");
        assert_eq!(a.channel, c.channel);
        assert_eq!(c.col, a.col + 1, "then walk the open row");
        assert_eq!(a.row, c.row);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_row_index_panics() {
        let g = Geometry::tiny();
        g.addr_from_rank_row_index(0, 0, g.rows_per_rank());
    }
}
