//! Memory-system events consumed by observers (the RowHammer oracle, debug
//! tooling). Event collection is optional; performance runs disable it.

use crate::addr::DramAddr;
use crate::time::Cycle;
use crate::tracker::ResetScope;

/// Something security-relevant the memory controller did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemEvent {
    /// An ACT command opened `addr.row`.
    Activate {
        /// The activated row.
        addr: DramAddr,
        /// Issue cycle.
        cycle: Cycle,
    },
    /// A mitigation refreshed the victims within `blast_radius` of the
    /// aggressor row.
    VictimsRefreshed {
        /// The aggressor whose neighbours were refreshed.
        aggressor: DramAddr,
        /// Rows refreshed on each side.
        blast_radius: u8,
        /// Completion cycle.
        cycle: Cycle,
    },
    /// A structure-reset sweep refreshed every row in scope.
    SweepRefreshed {
        /// The refreshed scope.
        scope: ResetScope,
        /// Completion cycle.
        cycle: Cycle,
    },
    /// An auto-refresh window (tREFW) boundary passed: every row has been
    /// refreshed once since the previous boundary.
    RefreshWindowEnd {
        /// Boundary cycle.
        cycle: Cycle,
    },
}
