//! Memory-system events consumed by observers (the RowHammer oracle, debug
//! tooling). Event collection is optional; performance runs disable it.

use crate::addr::{DramAddr, PhysAddr};
use crate::req::SourceId;
use crate::time::Cycle;
use crate::tracker::ResetScope;

/// Something security-relevant the memory controller did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemEvent {
    /// An ACT command opened `addr.row`.
    Activate {
        /// The activated row.
        addr: DramAddr,
        /// Issue cycle.
        cycle: Cycle,
    },
    /// A mitigation refreshed the victims within `blast_radius` of the
    /// aggressor row.
    VictimsRefreshed {
        /// The aggressor whose neighbours were refreshed.
        aggressor: DramAddr,
        /// Rows refreshed on each side.
        blast_radius: u8,
        /// Completion cycle.
        cycle: Cycle,
    },
    /// A structure-reset sweep refreshed every row in scope.
    SweepRefreshed {
        /// The refreshed scope.
        scope: ResetScope,
        /// Completion cycle.
        cycle: Cycle,
    },
    /// An auto-refresh window (tREFW) boundary passed: every row has been
    /// refreshed once since the previous boundary.
    RefreshWindowEnd {
        /// Boundary cycle.
        cycle: Cycle,
    },
    /// A demand read finished its column access: the controller resolved
    /// the completion cycle for the request that arrived at `arrival`.
    /// The `cycle` field may lie in the future relative to the event's
    /// issue point (like [`MemEvent::VictimsRefreshed`] completion
    /// cycles): it is the cycle the data returns to the requester, so
    /// `cycle - arrival` is exactly the inject-to-complete latency an
    /// attacker core can observe from software — the side channel
    /// [`crate::telemetry::LatencyProbe`] exposes.
    ReadCompleted {
        /// The requesting agent.
        source: SourceId,
        /// The physical address read.
        phys: PhysAddr,
        /// Controller arrival cycle.
        arrival: Cycle,
        /// Data-return cycle.
        cycle: Cycle,
    },
}
