//! Event-driven scheduling vocabulary.
//!
//! The simulator's time-skipping engine asks each component when it next
//! has something to do and advances the clock straight to that cycle
//! instead of ticking every bus cycle. [`NextEvent`] is the contract a
//! component must uphold to participate:
//!
//! * `next_event(now)` returns the component's next **decision point**: a
//!   lower bound `>= now` on the first cycle at which ticking the
//!   component could have any observable effect (issue a command, surface
//!   a completion, fire a refresh or tracker hook, mutate statistics,
//!   consult the tracker, ...).
//! * Returning `now` means "tick me this very cycle" — the caller must
//!   step densely. Returning `T > now` asserts that ticks at every cycle
//!   in `now..T` are exact no-ops, so the engine may jump straight to `T`
//!   and tick there; this is what lets a saturated controller advance in
//!   command-granularity steps (one tick per command-issue decision)
//!   rather than one tick per bus cycle.
//! * Returning a bound that is *too small* merely costs a wasted dense
//!   tick; returning a bound that is *too large* skips real work and
//!   breaks bit-exact equivalence with the dense engine. When in doubt a
//!   component must answer `now`.
//! * The bound is computed against current state only; it must not mutate
//!   the component. Implementations are expected to answer in O(1) — the
//!   engine probes every component each iteration, so the probe must cost
//!   less than the dense tick it hopes to elide (the memory controller
//!   caches its bound and keeps it current across mutations for exactly
//!   this reason).
//!
//! [`NEVER`] is the answer for "no pending work at all"; callers clamp it
//! against their own horizon (simulation window end).

use crate::time::Cycle;

/// "No event pending": the maximal cycle, to be clamped by the caller.
pub const NEVER: Cycle = Cycle::MAX;

/// A component that can report its next decision point.
pub trait NextEvent {
    /// The first cycle `>= now` at which ticking this component could have
    /// an observable effect; `now` itself means "cannot skip". See the
    /// module docs for the exact contract.
    fn next_event(&self, now: Cycle) -> Cycle;

    /// Lookahead bound: a lower bound on the component's
    /// *inject-to-complete* latency. A request handed to the component at
    /// cycle `t` must not surface a completion before `t +
    /// min_inject_latency()`.
    ///
    /// This is what makes conservative parallel stepping safe: when the
    /// system splits each bus cycle into a core phase (which injects
    /// requests) and a memory phase (which consumes them), the executor
    /// may advance every shard through cycle `t` concurrently, knowing
    /// that nothing injected during the core phase of cycle `t` can
    /// produce a completion at or before `t` — so the set of completions
    /// the rendezvous delivers is fixed before the phase starts, on any
    /// thread interleaving.
    ///
    /// The bound must be conservative (small is safe, large is wrong). A
    /// memory controller's true floor is `tRCD + tCL + tBL` for a request
    /// that must open its row; the guaranteed bound is the row-hit floor
    /// `tCL + tBL`, which is what the DDR5 controller reports. The
    /// default claims nothing (`0` — only same-cycle completion is
    /// excluded by the phase ordering itself).
    fn min_inject_latency(&self) -> Cycle {
        0
    }
}

/// Clamps a candidate event time into the range callers that track
/// "first effect strictly after the tick I just ran" expect: at least
/// `now + 1` (the current cycle has already been processed) and at most
/// [`NEVER`].
pub fn at_least_next_cycle(t: Cycle, now: Cycle) -> Cycle {
    t.max(now.saturating_add(1))
}

/// Earliest of a set of candidate event times; [`NEVER`] for an empty set.
pub fn earliest<I: IntoIterator<Item = Cycle>>(times: I) -> Cycle {
    times.into_iter().min().unwrap_or(NEVER)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clamp_is_strictly_in_the_future() {
        assert_eq!(at_least_next_cycle(0, 10), 11);
        assert_eq!(at_least_next_cycle(15, 10), 15);
        assert_eq!(at_least_next_cycle(NEVER, NEVER), NEVER, "no overflow at the horizon");
    }

    #[test]
    fn earliest_handles_empty_and_min() {
        assert_eq!(earliest([]), NEVER);
        assert_eq!(earliest([5, 3, 9]), 3);
    }
}
