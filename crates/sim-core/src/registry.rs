//! The open tracker registry: string-keyed tracker descriptors with a
//! tunable parameter schema and a build factory.
//!
//! The paper's evaluation is comparative — DAPPER against Hydra, START,
//! CoMeT, ABACuS, BlockHammer, PARA, PrIDE, and PRAC — and the design space
//! around each of those points is wide (structure sizes, probabilities,
//! reset policies). A [`TrackerRegistry`] makes every tracker constructible
//! from a **string key plus a parameter map**, so experiment sweeps,
//! declarative spec files, and third-party trackers all go through one
//! door:
//!
//! * each tracker publishes a [`TrackerSpec`]: canonical key, display name,
//!   aliases, storage-overhead model, whether it reserves LLC capacity, a
//!   [`ParamSpec`] schema with paper-baseline defaults, and a `build`
//!   factory from resolved [`TrackerParams`];
//! * lookups normalize case and separators (`DAPPER_H`, `dapper-h`, and
//!   `DapperH` resolve identically) and honour the spec's alias table;
//! * parameter maps are validated against the schema **before** the factory
//!   runs — unknown keys, type mismatches, and out-of-range values all fail
//!   with the offending key in the message.
//!
//! The registry itself lives here in `sim_core` so tracker crates can
//! register into it without depending on the simulator; `sim` assembles the
//! default instance from the built-in trackers and exposes it globally.

use crate::addr::Geometry;
use crate::tracker::{NullTracker, RowHammerTracker, StorageOverhead};
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::sync::Arc;

/// One tunable parameter value.
#[derive(Debug, Clone, PartialEq)]
pub enum ParamValue {
    /// An integer (entries, ways, sizes, ...).
    Int(i64),
    /// A floating-point value (probabilities, thresholds, periods, ...).
    Float(f64),
    /// A flag.
    Bool(bool),
    /// A named choice (e.g. a reset strategy).
    Str(String),
}

impl ParamValue {
    /// The kind name used in error messages ("int", "float", ...).
    pub fn kind(&self) -> &'static str {
        match self {
            ParamValue::Int(_) => "int",
            ParamValue::Float(_) => "float",
            ParamValue::Bool(_) => "bool",
            ParamValue::Str(_) => "str",
        }
    }

    /// Numeric view (ints coerce to floats) for range checks.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            ParamValue::Int(i) => Some(*i as f64),
            ParamValue::Float(f) => Some(*f),
            _ => None,
        }
    }
}

impl fmt::Display for ParamValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParamValue::Int(i) => write!(f, "{i}"),
            ParamValue::Float(x) => write!(f, "{x}"),
            ParamValue::Bool(b) => write!(f, "{b}"),
            ParamValue::Str(s) => write!(f, "{s:?}"),
        }
    }
}

impl From<i64> for ParamValue {
    fn from(v: i64) -> Self {
        ParamValue::Int(v)
    }
}
impl From<i32> for ParamValue {
    fn from(v: i32) -> Self {
        ParamValue::Int(v as i64)
    }
}
impl From<u32> for ParamValue {
    fn from(v: u32) -> Self {
        ParamValue::Int(v as i64)
    }
}
impl From<usize> for ParamValue {
    fn from(v: usize) -> Self {
        ParamValue::Int(v as i64)
    }
}
impl From<f64> for ParamValue {
    fn from(v: f64) -> Self {
        ParamValue::Float(v)
    }
}
impl From<bool> for ParamValue {
    fn from(v: bool) -> Self {
        ParamValue::Bool(v)
    }
}
impl From<&str> for ParamValue {
    fn from(v: &str) -> Self {
        ParamValue::Str(v.to_string())
    }
}
impl From<String> for ParamValue {
    fn from(v: String) -> Self {
        ParamValue::Str(v)
    }
}

/// Schema entry for one tunable parameter.
#[derive(Debug, Clone)]
pub struct ParamSpec {
    /// Parameter key (`rcc_entries`, `exponent`, ...).
    pub key: String,
    /// One-line description shown by introspection tools.
    pub doc: String,
    /// Paper-baseline default.
    pub default: ParamValue,
    /// Inclusive lower bound (numeric parameters).
    pub min: Option<f64>,
    /// Inclusive upper bound (numeric parameters).
    pub max: Option<f64>,
    /// Allowed values (string parameters); empty = unrestricted.
    pub choices: Vec<String>,
}

impl ParamSpec {
    /// An integer parameter with a paper-baseline default.
    pub fn int(key: &str, doc: &str, default: i64) -> Self {
        Self::new(key, doc, ParamValue::Int(default))
    }

    /// A float parameter with a paper-baseline default.
    pub fn float(key: &str, doc: &str, default: f64) -> Self {
        Self::new(key, doc, ParamValue::Float(default))
    }

    /// A boolean parameter with a paper-baseline default.
    pub fn flag(key: &str, doc: &str, default: bool) -> Self {
        Self::new(key, doc, ParamValue::Bool(default))
    }

    /// A string-choice parameter with a paper-baseline default.
    pub fn choice(key: &str, doc: &str, default: &str, choices: &[&str]) -> Self {
        let mut s = Self::new(key, doc, ParamValue::Str(default.to_string()));
        s.choices = choices.iter().map(|c| c.to_string()).collect();
        s
    }

    fn new(key: &str, doc: &str, default: ParamValue) -> Self {
        Self {
            key: key.to_string(),
            doc: doc.to_string(),
            default,
            min: None,
            max: None,
            choices: Vec::new(),
        }
    }

    /// Builder-style inclusive numeric range.
    pub fn range(mut self, min: f64, max: f64) -> Self {
        self.min = Some(min);
        self.max = Some(max);
        self
    }

    fn check(&self, tracker: &str, value: &ParamValue) -> Result<(), RegistryError> {
        let compatible = matches!(
            (&self.default, value),
            (ParamValue::Int(_), ParamValue::Int(_))
                | (ParamValue::Float(_), ParamValue::Float(_))
                | (ParamValue::Float(_), ParamValue::Int(_))
                | (ParamValue::Bool(_), ParamValue::Bool(_))
                | (ParamValue::Str(_), ParamValue::Str(_))
        );
        if !compatible {
            return Err(RegistryError::WrongType {
                tracker: tracker.to_string(),
                key: self.key.clone(),
                expected: self.default.kind(),
                got: value.kind(),
            });
        }
        if let Some(v) = value.as_f64() {
            let below = self.min.is_some_and(|m| v < m);
            let above = self.max.is_some_and(|m| v > m);
            if below || above {
                return Err(RegistryError::OutOfRange {
                    tracker: tracker.to_string(),
                    key: self.key.clone(),
                    value: value.clone(),
                    min: self.min,
                    max: self.max,
                });
            }
        }
        if let ParamValue::Str(s) = value {
            if !self.choices.is_empty() && !self.choices.contains(s) {
                return Err(RegistryError::InvalidParam {
                    tracker: tracker.to_string(),
                    key: self.key.clone(),
                    message: format!("{s:?} is not one of {:?}", self.choices),
                });
            }
        }
        Ok(())
    }

    /// Coerces a compatible value to the schema's kind (int → float).
    fn coerce(&self, value: ParamValue) -> ParamValue {
        match (&self.default, value) {
            (ParamValue::Float(_), ParamValue::Int(i)) => ParamValue::Float(i as f64),
            (_, v) => v,
        }
    }
}

/// Resolved build-time inputs a [`TrackerSpec`] factory receives: the
/// system-level knobs every tracker needs plus the full parameter map
/// (schema defaults merged with validated overrides).
#[derive(Debug, Clone)]
pub struct TrackerParams {
    /// RowHammer threshold N_RH.
    pub nrh: u32,
    /// DRAM organisation.
    pub geometry: Geometry,
    /// The channel this instance covers.
    pub channel: u8,
    /// Seed for all randomised internals.
    pub seed: u64,
    values: BTreeMap<String, ParamValue>,
}

impl TrackerParams {
    /// Build-time inputs with an empty parameter map (the registry merges
    /// schema defaults in before the factory ever sees it).
    pub fn new(nrh: u32, geometry: Geometry, channel: u8, seed: u64) -> Self {
        Self { nrh, geometry, channel, seed, values: BTreeMap::new() }
    }

    /// Attaches raw overrides (validated against the schema at build time).
    pub fn with_values(mut self, values: BTreeMap<String, ParamValue>) -> Self {
        self.values = values;
        self
    }

    /// The raw parameter map.
    pub fn values(&self) -> &BTreeMap<String, ParamValue> {
        &self.values
    }

    /// Looks a parameter up without panicking.
    pub fn value(&self, key: &str) -> Option<&ParamValue> {
        self.values.get(key)
    }

    fn required(&self, key: &str) -> &ParamValue {
        self.values.get(key).unwrap_or_else(|| {
            panic!("parameter '{key}' missing: factories must be called through the registry")
        })
    }

    /// An integer parameter (panics if absent or non-integer — the registry
    /// validates before the factory runs, so this indicates a schema bug).
    pub fn int(&self, key: &str) -> i64 {
        match self.required(key) {
            ParamValue::Int(i) => *i,
            v => panic!("parameter '{key}' is {} ({v}), expected int", v.kind()),
        }
    }

    /// An integer parameter as `usize`.
    pub fn count(&self, key: &str) -> usize {
        let v = self.int(key);
        usize::try_from(v).unwrap_or_else(|_| panic!("parameter '{key}' = {v} must be >= 0"))
    }

    /// A float parameter (ints coerce).
    pub fn float(&self, key: &str) -> f64 {
        match self.required(key) {
            ParamValue::Float(f) => *f,
            ParamValue::Int(i) => *i as f64,
            v => panic!("parameter '{key}' is {} ({v}), expected float", v.kind()),
        }
    }

    /// A boolean parameter.
    pub fn flag(&self, key: &str) -> bool {
        match self.required(key) {
            ParamValue::Bool(b) => *b,
            v => panic!("parameter '{key}' is {} ({v}), expected bool", v.kind()),
        }
    }

    /// A string parameter.
    pub fn text(&self, key: &str) -> &str {
        match self.required(key) {
            ParamValue::Str(s) => s,
            v => panic!("parameter '{key}' is {} ({v}), expected str", v.kind()),
        }
    }
}

/// Factory signature: resolved params in, tracker out. Factories may reject
/// parameter *combinations* the flat schema cannot express (e.g. a group
/// size that must divide the rows per rank).
pub type BuildFn =
    Box<dyn Fn(&TrackerParams) -> Result<Box<dyn RowHammerTracker>, RegistryError> + Send + Sync>;

/// Storage-overhead model: params in, Table III figure out, without paying
/// for a full build.
pub type StorageFn = Box<dyn Fn(&TrackerParams) -> StorageOverhead + Send + Sync>;

/// Everything the registry knows about one tracker.
pub struct TrackerSpec {
    key: String,
    display_name: String,
    aliases: Vec<String>,
    summary: String,
    reserves_llc: bool,
    params: Vec<ParamSpec>,
    storage: Option<StorageFn>,
    build: BuildFn,
}

impl fmt::Debug for TrackerSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TrackerSpec")
            .field("key", &self.key)
            .field("display_name", &self.display_name)
            .field("aliases", &self.aliases)
            .field("reserves_llc", &self.reserves_llc)
            .field("params", &self.params.iter().map(|p| p.key.as_str()).collect::<Vec<_>>())
            .finish_non_exhaustive()
    }
}

impl TrackerSpec {
    /// A new descriptor under a canonical key, display name, and factory.
    pub fn new<F>(key: &str, display_name: &str, build: F) -> Self
    where
        F: Fn(&TrackerParams) -> Result<Box<dyn RowHammerTracker>, RegistryError>
            + Send
            + Sync
            + 'static,
    {
        Self {
            key: key.to_string(),
            display_name: display_name.to_string(),
            aliases: Vec::new(),
            summary: String::new(),
            reserves_llc: false,
            params: Vec::new(),
            storage: None,
            build: Box::new(build),
        }
    }

    /// Adds a lookup alias (normalized like any other name).
    pub fn alias(mut self, alias: &str) -> Self {
        self.aliases.push(alias.to_string());
        self
    }

    /// One-line description (venue, mechanism).
    pub fn summary(mut self, summary: &str) -> Self {
        self.summary = summary.to_string();
        self
    }

    /// Marks the tracker as reserving half the LLC (START-style); the
    /// simulator mirrors the reservation on the demand side.
    pub fn reserves_llc(mut self, yes: bool) -> Self {
        self.reserves_llc = yes;
        self
    }

    /// Declares one tunable parameter.
    pub fn param(mut self, p: ParamSpec) -> Self {
        self.params.push(p);
        self
    }

    /// Attaches the storage-overhead model.
    pub fn storage<F>(mut self, f: F) -> Self
    where
        F: Fn(&TrackerParams) -> StorageOverhead + Send + Sync + 'static,
    {
        self.storage = Some(Box::new(f));
        self
    }

    /// Canonical registry key.
    pub fn key(&self) -> &str {
        &self.key
    }

    /// Display name matching the paper's figures.
    pub fn display_name(&self) -> &str {
        &self.display_name
    }

    /// Lookup aliases.
    pub fn aliases(&self) -> &[String] {
        &self.aliases
    }

    /// One-line description.
    pub fn summary_text(&self) -> &str {
        &self.summary
    }

    /// Whether the tracker reserves half the LLC.
    pub fn llc_reserved(&self) -> bool {
        self.reserves_llc
    }

    /// The tunable parameter schema.
    pub fn param_schema(&self) -> &[ParamSpec] {
        &self.params
    }

    /// Validates `overrides` against the schema and merges them over the
    /// defaults. Errors name the offending key.
    pub fn resolve_params(
        &self,
        overrides: &BTreeMap<String, ParamValue>,
    ) -> Result<BTreeMap<String, ParamValue>, RegistryError> {
        for (key, value) in overrides {
            let Some(spec) = self.params.iter().find(|p| &p.key == key) else {
                return Err(RegistryError::UnknownParam {
                    tracker: self.key.clone(),
                    key: key.clone(),
                    known: self.params.iter().map(|p| p.key.clone()).collect(),
                });
            };
            spec.check(&self.key, value)?;
        }
        let mut merged = BTreeMap::new();
        for p in &self.params {
            let v = overrides.get(&p.key).cloned().unwrap_or_else(|| p.default.clone());
            merged.insert(p.key.clone(), p.coerce(v));
        }
        Ok(merged)
    }

    /// Validates + merges the params carried by `base` and runs the factory.
    pub fn build(&self, base: &TrackerParams) -> Result<Box<dyn RowHammerTracker>, RegistryError> {
        let merged = self.resolve_params(&base.values)?;
        let resolved = TrackerParams {
            nrh: base.nrh,
            geometry: base.geometry,
            channel: base.channel,
            seed: base.seed,
            values: merged,
        };
        (self.build)(&resolved)
    }

    /// Storage cost for the given parameters (Table III model).
    pub fn storage_overhead(&self, base: &TrackerParams) -> StorageOverhead {
        match (&self.storage, self.resolve_params(&base.values)) {
            (Some(f), Ok(merged)) => f(&TrackerParams {
                nrh: base.nrh,
                geometry: base.geometry,
                channel: base.channel,
                seed: base.seed,
                values: merged,
            }),
            _ => StorageOverhead::default(),
        }
    }
}

/// What went wrong resolving a tracker or its parameters. Every variant
/// carries the offending name/key so spec files and CLIs can point at the
/// exact line the user must fix.
#[derive(Debug, Clone, PartialEq)]
pub enum RegistryError {
    /// No tracker under that name or alias.
    UnknownTracker {
        /// The name that failed to resolve.
        name: String,
        /// Canonical keys the registry does know.
        known: Vec<String>,
    },
    /// A registration collided with an existing key or alias.
    DuplicateKey {
        /// The colliding (normalized) name.
        key: String,
    },
    /// A parameter key the tracker's schema does not declare.
    UnknownParam {
        /// Tracker key.
        tracker: String,
        /// The offending parameter key.
        key: String,
        /// Keys the schema does declare.
        known: Vec<String>,
    },
    /// A parameter value outside the schema's range.
    OutOfRange {
        /// Tracker key.
        tracker: String,
        /// The offending parameter key.
        key: String,
        /// The rejected value.
        value: ParamValue,
        /// Inclusive lower bound, if any.
        min: Option<f64>,
        /// Inclusive upper bound, if any.
        max: Option<f64>,
    },
    /// A parameter value of the wrong kind.
    WrongType {
        /// Tracker key.
        tracker: String,
        /// The offending parameter key.
        key: String,
        /// Kind the schema declares.
        expected: &'static str,
        /// Kind that was supplied.
        got: &'static str,
    },
    /// A value the factory rejected (bad combination, invalid choice, ...).
    InvalidParam {
        /// Tracker key.
        tracker: String,
        /// The offending parameter key.
        key: String,
        /// Why it was rejected.
        message: String,
    },
}

impl RegistryError {
    /// Shorthand for factory-side rejections.
    pub fn invalid(tracker: &str, key: &str, message: impl Into<String>) -> Self {
        RegistryError::InvalidParam {
            tracker: tracker.to_string(),
            key: key.to_string(),
            message: message.into(),
        }
    }
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegistryError::UnknownTracker { name, known } => {
                write!(f, "unknown tracker '{name}'; known: {}", known.join(", "))
            }
            RegistryError::DuplicateKey { key } => {
                write!(f, "tracker key or alias '{key}' is already registered")
            }
            RegistryError::UnknownParam { tracker, key, known } => {
                write!(
                    f,
                    "tracker '{tracker}' has no parameter '{key}'; known: {}",
                    if known.is_empty() { "(none)".to_string() } else { known.join(", ") }
                )
            }
            RegistryError::OutOfRange { tracker, key, value, min, max } => {
                write!(f, "parameter '{tracker}.{key}' = {value} out of range [")?;
                match min {
                    Some(m) => write!(f, "{m}")?,
                    None => write!(f, "-inf")?,
                }
                write!(f, ", ")?;
                match max {
                    Some(m) => write!(f, "{m}")?,
                    None => write!(f, "+inf")?,
                }
                write!(f, "]")
            }
            RegistryError::WrongType { tracker, key, expected, got } => {
                write!(f, "parameter '{tracker}.{key}' must be {expected}, got {got}")
            }
            RegistryError::InvalidParam { tracker, key, message } => {
                write!(f, "parameter '{tracker}.{key}': {message}")
            }
        }
    }
}

impl std::error::Error for RegistryError {}

/// Normalizes a tracker name for lookup: lowercase, alphanumerics only, so
/// `DAPPER-H`, `dapper_h`, and `DapperH` collapse to one key.
pub fn normalize_key(s: &str) -> String {
    s.chars().filter(|c| c.is_ascii_alphanumeric()).map(|c| c.to_ascii_lowercase()).collect()
}

/// An open, string-keyed collection of [`TrackerSpec`]s.
#[derive(Debug, Default)]
pub struct TrackerRegistry {
    specs: Vec<Arc<TrackerSpec>>,
    index: HashMap<String, usize>,
}

impl TrackerRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a spec, indexing its key, display name, and aliases
    /// (normalized). Fails on any collision.
    pub fn register(&mut self, spec: TrackerSpec) -> Result<(), RegistryError> {
        let mut names = vec![spec.key.clone(), spec.display_name.clone()];
        names.extend(spec.aliases.iter().cloned());
        let mut normalized: Vec<String> = names.iter().map(|n| normalize_key(n)).collect();
        normalized.sort();
        normalized.dedup();
        for n in &normalized {
            if self.index.contains_key(n) {
                return Err(RegistryError::DuplicateKey { key: n.clone() });
            }
        }
        let slot = self.specs.len();
        self.specs.push(Arc::new(spec));
        for n in normalized {
            self.index.insert(n, slot);
        }
        Ok(())
    }

    /// Looks up a spec by key, display name, or alias (case/separator
    /// insensitive).
    pub fn get(&self, name: &str) -> Option<&Arc<TrackerSpec>> {
        self.index.get(&normalize_key(name)).map(|&i| &self.specs[i])
    }

    /// [`TrackerRegistry::get`], with an error listing the known keys.
    pub fn resolve(&self, name: &str) -> Result<&Arc<TrackerSpec>, RegistryError> {
        self.get(name).ok_or_else(|| RegistryError::UnknownTracker {
            name: name.to_string(),
            known: self.keys().map(str::to_string).collect(),
        })
    }

    /// Every spec, in registration order.
    pub fn specs(&self) -> impl Iterator<Item = &Arc<TrackerSpec>> {
        self.specs.iter()
    }

    /// Canonical keys, in registration order.
    pub fn keys(&self) -> impl Iterator<Item = &str> {
        self.specs.iter().map(|s| s.key())
    }

    /// Number of registered trackers.
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// Resolves `name` and builds an instance from `params` (overrides are
    /// validated against the schema first).
    pub fn build(
        &self,
        name: &str,
        params: &TrackerParams,
    ) -> Result<Box<dyn RowHammerTracker>, RegistryError> {
        self.resolve(name)?.build(params)
    }
}

/// The descriptor for the insecure baseline ([`NullTracker`]): key `none`,
/// no parameters, zero storage.
pub fn null_spec() -> TrackerSpec {
    TrackerSpec::new("none", "none", |_p| Ok(Box::new(NullTracker)))
        .alias("null")
        .alias("insecure")
        .alias("baseline")
        .summary("insecure baseline (no tracker)")
        .storage(|_| StorageOverhead::default())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_registry() -> TrackerRegistry {
        let mut reg = TrackerRegistry::new();
        reg.register(null_spec()).unwrap();
        reg.register(
            TrackerSpec::new("toy", "Toy", |p| {
                if p.count("entries") % 2 != 0 {
                    return Err(RegistryError::invalid("toy", "entries", "must be even"));
                }
                Ok(Box::new(NullTracker))
            })
            .alias("toy-tracker")
            .param(ParamSpec::int("entries", "table entries", 64).range(2.0, 1024.0))
            .param(ParamSpec::float("prob", "sampling probability", 0.5).range(0.0, 1.0))
            .param(ParamSpec::choice("mode", "reset mode", "soft", &["soft", "hard"]))
            .storage(|p| StorageOverhead::new(p.count("entries") as u64 * 4, 0)),
        )
        .unwrap();
        reg
    }

    fn base() -> TrackerParams {
        TrackerParams::new(500, Geometry::paper_baseline(), 0, 1)
    }

    #[test]
    fn lookup_normalizes_case_and_separators() {
        let reg = toy_registry();
        for name in ["toy", "TOY", "Toy_Tracker", "toy-tracker", "NONE", "Null", "insecure"] {
            assert!(reg.get(name).is_some(), "{name} must resolve");
        }
        assert!(reg.get("unknown").is_none());
        let err = reg.resolve("unknown").unwrap_err();
        assert!(err.to_string().contains("unknown tracker 'unknown'"), "{err}");
        assert!(err.to_string().contains("toy"), "error must list known keys: {err}");
    }

    #[test]
    fn defaults_merge_and_overrides_validate() {
        let reg = toy_registry();
        let spec = reg.get("toy").unwrap();
        let merged = spec.resolve_params(&BTreeMap::new()).unwrap();
        assert_eq!(merged["entries"], ParamValue::Int(64));
        assert_eq!(merged["mode"], ParamValue::Str("soft".into()));

        let mut ov = BTreeMap::new();
        ov.insert("entries".to_string(), ParamValue::Int(128));
        let merged = spec.resolve_params(&ov).unwrap();
        assert_eq!(merged["entries"], ParamValue::Int(128));
    }

    #[test]
    fn unknown_param_errors_name_the_key() {
        let reg = toy_registry();
        let mut ov = BTreeMap::new();
        ov.insert("entriez".to_string(), ParamValue::Int(128));
        let err = reg.get("toy").unwrap().resolve_params(&ov).unwrap_err();
        assert!(err.to_string().contains("'entriez'"), "{err}");
        assert!(err.to_string().contains("entries"), "must list known params: {err}");
    }

    #[test]
    fn out_of_range_param_errors_name_the_key() {
        let reg = toy_registry();
        let mut ov = BTreeMap::new();
        ov.insert("prob".to_string(), ParamValue::Float(1.5));
        let err = reg.get("toy").unwrap().resolve_params(&ov).unwrap_err();
        assert!(err.to_string().contains("'toy.prob'"), "{err}");
        assert!(err.to_string().contains("1.5"), "{err}");
    }

    #[test]
    fn wrong_type_and_bad_choice_are_rejected() {
        let reg = toy_registry();
        let spec = reg.get("toy").unwrap();
        let mut ov = BTreeMap::new();
        ov.insert("entries".to_string(), ParamValue::Bool(true));
        let err = spec.resolve_params(&ov).unwrap_err();
        assert!(err.to_string().contains("must be int"), "{err}");
        let mut ov = BTreeMap::new();
        ov.insert("mode".to_string(), ParamValue::Str("medium".into()));
        let err = spec.resolve_params(&ov).unwrap_err();
        assert!(err.to_string().contains("'toy.mode'"), "{err}");
    }

    #[test]
    fn ints_coerce_into_float_params() {
        let reg = toy_registry();
        let mut ov = BTreeMap::new();
        ov.insert("prob".to_string(), ParamValue::Int(1));
        let merged = reg.get("toy").unwrap().resolve_params(&ov).unwrap();
        assert_eq!(merged["prob"], ParamValue::Float(1.0));
    }

    #[test]
    fn factory_rejections_surface_as_invalid_param() {
        let reg = toy_registry();
        let mut ov = BTreeMap::new();
        ov.insert("entries".to_string(), ParamValue::Int(3));
        let err = match reg.build("toy", &base().with_values(ov)) {
            Err(e) => e,
            Ok(_) => panic!("odd entry count must be rejected"),
        };
        assert!(err.to_string().contains("'toy.entries'"), "{err}");
        assert!(err.to_string().contains("even"), "{err}");
    }

    #[test]
    fn duplicate_registration_is_rejected() {
        let mut reg = toy_registry();
        let err = reg.register(TrackerSpec::new("TOY", "Other", |_p| Ok(Box::new(NullTracker))));
        assert_eq!(err, Err(RegistryError::DuplicateKey { key: "toy".into() }));
    }

    #[test]
    fn storage_model_sees_resolved_params() {
        let reg = toy_registry();
        let spec = reg.get("toy").unwrap();
        assert_eq!(spec.storage_overhead(&base()).sram_bytes, 256);
        let mut ov = BTreeMap::new();
        ov.insert("entries".to_string(), ParamValue::Int(100));
        assert_eq!(spec.storage_overhead(&base().with_values(ov)).sram_bytes, 400);
    }

    #[test]
    fn null_spec_builds_the_insecure_baseline() {
        let reg = toy_registry();
        let t = reg.build("none", &base()).unwrap();
        assert_eq!(t.name(), "none");
        assert_eq!(t.storage_overhead().sram_bytes, 0);
    }
}
