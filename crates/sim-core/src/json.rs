//! A minimal JSON document builder and parser.
//!
//! The workspace's `serde` is an offline marker-trait shim (see
//! `crates/shims/serde`), so structured results are serialized by hand.
//! This covers exactly what the experiment-spec and red-team layers need:
//! objects, arrays, strings, numbers, and booleans, rendered with stable
//! key order, plus a strict parser for round-tripping spec files and
//! results.

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number (non-finite values render as `null`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Builds a number value. Non-finite floats (±∞, NaN — e.g. the
    /// min/max of an empty [`crate::stats::RunningStats`]) have no JSON
    /// representation and become `null` here, so a document built through
    /// this constructor always round-trips through [`Json::parse`].
    pub fn num(n: impl Into<f64>) -> Json {
        let n = n.into();
        if n.is_finite() {
            Json::Num(n)
        } else {
            Json::Null
        }
    }

    /// Builds a number from a `u64` counter (exact for counts < 2^53;
    /// larger values — e.g. seeds — should use [`Json::hex`]).
    pub fn count(n: u64) -> Json {
        Json::Num(n as f64)
    }

    /// Renders a `u64` as a hex string, for values (seeds, addresses) that
    /// must survive the round-trip exactly.
    pub fn hex(n: u64) -> Json {
        Json::Str(format!("{n:#x}"))
    }

    /// Builds an object from key/value pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Serializes the value as compact JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.is_finite() {
                    out.push_str(&format!("{n}"));
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\r' => out.push_str("\\r"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    Json::Str(k.clone()).write(out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses a JSON document. Strict: exactly one value, nothing but
    /// whitespace after it. Errors carry a byte offset.
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after the document"));
        }
        Ok(v)
    }
}

/// A JSON parse failure at a byte offset.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: impl Into<String>) -> JsonError {
        JsonError { offset: self.pos, message: msg.into() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|b| std::str::from_utf8(b).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            // Surrogate pairs are not needed for our specs;
                            // reject rather than mis-decode.
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.err("non-scalar \\u escape"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().expect("nonempty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>().map(Json::Num).map_err(|_| self.err(format!("bad number '{text}'")))
    }
}

/// Escapes one CSV field (quotes it when it contains separators).
pub fn csv_field(s: &str) -> String {
    if s.contains([',', '"', '\n']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_documents() {
        let doc = Json::obj([
            ("name", Json::str("redteam")),
            ("seed", Json::hex(0xDA99E5)),
            ("ok", Json::Bool(true)),
            ("rows", Json::Arr(vec![Json::num(1.5), Json::count(3), Json::Null])),
        ]);
        assert_eq!(
            doc.render(),
            r#"{"name":"redteam","seed":"0xda99e5","ok":true,"rows":[1.5,3,null]}"#
        );
    }

    #[test]
    fn escapes_strings() {
        assert_eq!(Json::str("a\"b\\c\nd").render(), r#""a\"b\\c\nd""#);
    }

    #[test]
    fn non_finite_numbers_render_null() {
        assert_eq!(Json::num(f64::INFINITY).render(), "null");
        // The raw variant is also guarded at render time.
        assert_eq!(Json::Num(f64::NAN).render(), "null");
    }

    #[test]
    fn non_finite_numbers_round_trip_as_null() {
        // Regression: `Json::Num(INFINITY)` used to render as `null` but
        // compare unequal to its own parse. The builder now normalizes
        // non-finite floats to `Null` at construction, so build → render
        // → parse is the identity for documents made through `num`.
        for bad in [f64::INFINITY, f64::NEG_INFINITY, f64::NAN] {
            let doc = Json::obj([("v", Json::num(bad)), ("ok", Json::num(1.5))]);
            let back = Json::parse(&doc.render()).unwrap();
            assert_eq!(back, doc);
            assert_eq!(doc.get("v"), Some(&Json::Null));
        }
    }

    #[test]
    fn csv_fields_quote_when_needed() {
        assert_eq!(csv_field("plain"), "plain");
        assert_eq!(csv_field("a,b"), "\"a,b\"");
        assert_eq!(csv_field("say \"hi\""), "\"say \"\"hi\"\"\"");
    }

    #[test]
    fn parse_round_trips_render() {
        let doc = Json::obj([
            ("name", Json::str("sweep")),
            ("n", Json::num(-2.5e3)),
            ("flag", Json::Bool(false)),
            ("none", Json::Null),
            ("items", Json::Arr(vec![Json::str("a\"b"), Json::count(7)])),
            ("nested", Json::obj([("k", Json::str("v"))])),
        ]);
        assert_eq!(Json::parse(&doc.render()).unwrap(), doc);
    }

    #[test]
    fn parse_handles_whitespace_and_escapes() {
        let v = Json::parse(" { \"a\" : [ 1 , 2.5 ] , \"s\" : \"x\\ny\\u0041\" } ").unwrap();
        assert_eq!(v.get("a"), Some(&Json::Arr(vec![Json::Num(1.0), Json::Num(2.5)])));
        assert_eq!(v.get("s"), Some(&Json::str("x\nyA")));
    }

    #[test]
    fn parse_rejects_garbage() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "nul", "1 2", "{\"a\" 1}", "\"open"] {
            assert!(Json::parse(bad).is_err(), "{bad:?} must not parse");
        }
        let err = Json::parse("[1, x]").unwrap_err();
        assert!(err.to_string().contains("byte 4"), "{err}");
    }

    #[test]
    fn get_walks_objects() {
        let v = Json::parse(r#"{"a":{"b":3}}"#).unwrap();
        assert_eq!(v.get("a").and_then(|a| a.get("b")), Some(&Json::Num(3.0)));
        assert_eq!(v.get("z"), None);
    }
}
