//! Small deterministic PRNGs for simulation hot paths.
//!
//! The simulator needs billions of cheap random draws (PARA coin flips,
//! random eviction, synthetic address streams) that must be reproducible
//! across runs from a seed. [`SplitMix64`] seeds state; [`Xoshiro256`]
//! (xoshiro256**) generates the streams.
//!
//! # Example
//!
//! ```
//! use sim_core::rng::Xoshiro256;
//!
//! let mut a = Xoshiro256::seed_from(42);
//! let mut b = Xoshiro256::seed_from(42);
//! assert_eq!(a.next_u64(), b.next_u64());
//! let r = a.gen_range(10);
//! assert!(r < 10);
//! ```

/// SplitMix64: used to expand a single `u64` seed into generator state.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a new SplitMix64 stream from a seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Returns the next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256** — fast, high-quality, 256-bit state.
#[derive(Debug, Clone)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// Seeds the generator by expanding `seed` with SplitMix64.
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        Self { s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()] }
    }

    /// Returns the next 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform draw in `0..bound` (Lemire's method; `bound` must be nonzero).
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    #[inline]
    pub fn gen_range(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "gen_range bound must be nonzero");
        // Multiply-shift with rejection for exact uniformity.
        loop {
            let x = self.next_u64();
            let m = x as u128 * bound as u128;
            let lo = m as u64;
            if lo >= bound || lo >= (u64::MAX - bound + 1) % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Bernoulli draw: true with probability `p` (clamped to `[0,1]`).
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        // Compare against 53 random mantissa bits.
        let x = self.next_u64() >> 11;
        (x as f64) < p * (1u64 << 53) as f64
    }

    /// Uniform draw in [0, 1).
    #[inline]
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Fisher-Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.gen_range(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }

    /// Geometric-ish draw: number of failures before a success with
    /// probability `p` per trial, capped at `cap`. Used for synthetic
    /// inter-arrival gaps.
    pub fn gen_geometric(&mut self, p: f64, cap: u64) -> u64 {
        if p >= 1.0 {
            return 0;
        }
        let p = p.max(1e-12);
        let u = self.gen_f64().max(f64::MIN_POSITIVE);
        let v = (u.ln() / (1.0 - p).ln()).floor() as u64;
        v.min(cap)
    }
}

/// A Zipf(θ) sampler over `0..n`, used for skewed footprints (YCSB-like
/// workloads). Precomputes the harmonic normaliser.
#[derive(Debug, Clone)]
pub struct Zipf {
    n: u64,
    theta: f64,
    zetan: f64,
    alpha: f64,
    eta: f64,
    zeta2: f64,
}

impl Zipf {
    /// Creates a sampler over `0..n` with skew `theta` in (0, 1).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `theta` is outside (0, 1).
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n > 0, "zipf domain must be nonempty");
        assert!(theta > 0.0 && theta < 1.0, "theta must be in (0,1)");
        let zetan = Self::zeta(n, theta);
        let zeta2 = Self::zeta(2, theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        Self { n, theta, zetan, alpha, eta, zeta2 }
    }

    fn zeta(n: u64, theta: f64) -> f64 {
        // For large n use the integral approximation to keep construction O(1).
        const EXACT_LIMIT: u64 = 10_000;
        if n <= EXACT_LIMIT {
            (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
        } else {
            let head: f64 = (1..=EXACT_LIMIT).map(|i| 1.0 / (i as f64).powf(theta)).sum();
            let tail = ((n as f64).powf(1.0 - theta) - (EXACT_LIMIT as f64).powf(1.0 - theta))
                / (1.0 - theta);
            head + tail
        }
    }

    /// Draws a rank in `0..n` (0 is the hottest item).
    pub fn sample(&self, rng: &mut Xoshiro256) -> u64 {
        // Gray et al. quick Zipf sampling.
        let u = rng.gen_f64();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let v = ((self.n as f64) * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        v.min(self.n - 1)
    }

    /// The domain size.
    pub fn domain(&self) -> u64 {
        self.n
    }

    /// Zeta(2, theta), exposed for test introspection.
    pub fn zeta2(&self) -> f64 {
        self.zeta2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_matches_reference_vector() {
        // Reference values for seed 1234567 from the public-domain C code.
        let mut sm = SplitMix64::new(0);
        let first = sm.next_u64();
        assert_eq!(first, 0xE220_A839_7B1D_CDAF);
    }

    #[test]
    fn xoshiro_is_deterministic_and_uniformish() {
        let mut r = Xoshiro256::seed_from(7);
        let mut counts = [0u32; 8];
        for _ in 0..8000 {
            counts[r.gen_range(8) as usize] += 1;
        }
        for c in counts {
            assert!((700..1300).contains(&c), "bucket count {c} far from uniform");
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = Xoshiro256::seed_from(9);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.125)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.125).abs() < 0.01, "observed {frac}");
    }

    #[test]
    fn zipf_is_skewed_toward_zero() {
        let z = Zipf::new(1000, 0.9);
        let mut r = Xoshiro256::seed_from(11);
        let mut zero_hits = 0;
        let mut top_decile = 0;
        for _ in 0..20_000 {
            let v = z.sample(&mut r);
            assert!(v < 1000);
            if v == 0 {
                zero_hits += 1;
            }
            if v < 100 {
                top_decile += 1;
            }
        }
        assert!(zero_hits > 1000, "hottest item should dominate: {zero_hits}");
        assert!(top_decile > 10_000, "top decile should take most mass: {top_decile}");
    }

    #[test]
    fn geometric_cap_is_respected() {
        let mut r = Xoshiro256::seed_from(3);
        for _ in 0..1000 {
            assert!(r.gen_geometric(0.001, 50) <= 50);
        }
    }
}
