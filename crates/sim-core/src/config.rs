//! System configuration (Table I of the paper, plus RowHammer parameters).

use crate::addr::Geometry;
use crate::time::{ms_to_cycles, Cycle};
use serde::{Deserialize, Serialize};

/// Which DRAM command the controller uses for mitigative refreshes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MitigationKind {
    /// Victim-Row Refresh: per-bank command refreshing the victim rows of
    /// one aggressor; blocks only the accessed bank (the paper's default).
    Vrr,
    /// Same-Bank Directed RFM (JEDEC DDR5): blocks the same bank in every
    /// bank group (8 banks) for 240 ns, supports blast radius 2.
    DrfmSb,
    /// Same-Bank RFM: like DRFMsb but 190 ns (used by PrIDE).
    RfmSb,
}

impl std::fmt::Display for MitigationKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MitigationKind::Vrr => write!(f, "VRR"),
            MitigationKind::DrfmSb => write!(f, "DRFMsb"),
            MitigationKind::RfmSb => write!(f, "RFMsb"),
        }
    }
}

/// Shared last-level cache configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LlcConfig {
    /// Total capacity in bytes (8 MB baseline).
    pub capacity_bytes: u64,
    /// Associativity (16 ways baseline).
    pub ways: u16,
    /// Line size in bytes (64 B).
    pub line_bytes: u32,
    /// Ways reserved for tracker metadata (START reserves half).
    pub reserved_ways: u16,
}

impl LlcConfig {
    /// The paper baseline: 8 MB, 16-way, 64 B lines, nothing reserved.
    pub fn paper_baseline() -> Self {
        Self { capacity_bytes: 8 << 20, ways: 16, line_bytes: 64, reserved_ways: 0 }
    }

    /// Number of sets.
    pub fn sets(&self) -> u64 {
        self.capacity_bytes / (self.ways as u64 * self.line_bytes as u64)
    }

    /// Total line count.
    pub fn lines(&self) -> u64 {
        self.capacity_bytes / self.line_bytes as u64
    }
}

/// Core-model configuration (Table I: 4 cores, OoO, 4 GHz, 4-wide, 128-entry
/// ROB).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CpuConfig {
    /// Number of cores.
    pub cores: u8,
    /// Retire width (instructions per core cycle).
    pub width: u8,
    /// Reorder-buffer entries (bounds outstanding work per core).
    pub rob_entries: u16,
}

impl CpuConfig {
    /// The paper baseline.
    pub fn paper_baseline() -> Self {
        Self { cores: 4, width: 4, rob_entries: 128 }
    }
}

/// Full system configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemConfig {
    /// DRAM organisation.
    pub geometry: Geometry,
    /// Core model.
    pub cpu: CpuConfig,
    /// Shared LLC.
    pub llc: LlcConfig,
    /// RowHammer threshold N_RH (default 500; sensitivity 125..4K).
    pub nrh: u32,
    /// Blast radius: victim rows refreshed on each side of an aggressor.
    pub blast_radius: u8,
    /// Mitigation command flavour.
    pub mitigation: MitigationKind,
    /// Simulated window in bus cycles (runs may also stop on instruction
    /// count, whichever comes first).
    pub window_cycles: Cycle,
    /// Per-core instruction budget; `u64::MAX` to run purely on time.
    pub max_instructions: u64,
    /// RNG seed controlling every stochastic element of the run.
    pub seed: u64,
}

impl SystemConfig {
    /// The paper's baseline system at N_RH = 500 with a 4 ms default window
    /// (an eighth of tREFW; every bench exposes a flag to lengthen it).
    pub fn paper_baseline() -> Self {
        Self {
            geometry: Geometry::paper_baseline(),
            cpu: CpuConfig::paper_baseline(),
            llc: LlcConfig::paper_baseline(),
            nrh: 500,
            blast_radius: 1,
            mitigation: MitigationKind::Vrr,
            window_cycles: ms_to_cycles(4.0),
            max_instructions: u64::MAX,
            seed: 0xDA99E5,
        }
    }

    /// Mitigation threshold N_M = N_RH / 2 used by DAPPER and Hydra.
    pub fn nm(&self) -> u32 {
        self.nrh / 2
    }

    /// Builder-style override of the RowHammer threshold.
    pub fn with_nrh(mut self, nrh: u32) -> Self {
        self.nrh = nrh;
        self
    }

    /// Builder-style override of the simulation window.
    pub fn with_window(mut self, cycles: Cycle) -> Self {
        self.window_cycles = cycles;
        self
    }

    /// Builder-style override of the mitigation command.
    pub fn with_mitigation(mut self, kind: MitigationKind) -> Self {
        self.mitigation = kind;
        self
    }

    /// Builder-style override of the blast radius.
    pub fn with_blast_radius(mut self, br: u8) -> Self {
        self.blast_radius = br;
        self
    }

    /// Builder-style override of the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

impl Default for SystemConfig {
    fn default() -> Self {
        Self::paper_baseline()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_matches_table_one() {
        let c = SystemConfig::paper_baseline();
        assert_eq!(c.cpu.cores, 4);
        assert_eq!(c.cpu.rob_entries, 128);
        assert_eq!(c.llc.capacity_bytes, 8 << 20);
        assert_eq!(c.llc.ways, 16);
        assert_eq!(c.llc.sets(), 8192);
        assert_eq!(c.nrh, 500);
        assert_eq!(c.nm(), 250);
        assert_eq!(c.mitigation, MitigationKind::Vrr);
    }

    #[test]
    fn builder_overrides_compose() {
        let c = SystemConfig::paper_baseline()
            .with_nrh(125)
            .with_blast_radius(2)
            .with_mitigation(MitigationKind::DrfmSb)
            .with_seed(7);
        assert_eq!(c.nrh, 125);
        assert_eq!(c.nm(), 62);
        assert_eq!(c.blast_radius, 2);
        assert_eq!(c.mitigation, MitigationKind::DrfmSb);
        assert_eq!(c.seed, 7);
    }

    #[test]
    fn mitigation_kind_displays() {
        assert_eq!(MitigationKind::Vrr.to_string(), "VRR");
        assert_eq!(MitigationKind::DrfmSb.to_string(), "DRFMsb");
        assert_eq!(MitigationKind::RfmSb.to_string(), "RFMsb");
    }
}
