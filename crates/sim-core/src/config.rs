//! System configuration (Table I of the paper, plus RowHammer parameters).

use crate::addr::Geometry;
use crate::time::{ms_to_cycles, Cycle};
use serde::{Deserialize, Serialize};

/// Which DRAM command the controller uses for mitigative refreshes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MitigationKind {
    /// Victim-Row Refresh: per-bank command refreshing the victim rows of
    /// one aggressor; blocks only the accessed bank (the paper's default).
    Vrr,
    /// Same-Bank Directed RFM (JEDEC DDR5): blocks the same bank in every
    /// bank group (8 banks) for 240 ns, supports blast radius 2.
    DrfmSb,
    /// Same-Bank RFM: like DRFMsb but 190 ns (used by PrIDE).
    RfmSb,
}

impl std::fmt::Display for MitigationKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MitigationKind::Vrr => write!(f, "VRR"),
            MitigationKind::DrfmSb => write!(f, "DRFMsb"),
            MitigationKind::RfmSb => write!(f, "RFMsb"),
        }
    }
}

/// Shared last-level cache configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LlcConfig {
    /// Total capacity in bytes (8 MB baseline).
    pub capacity_bytes: u64,
    /// Associativity (16 ways baseline).
    pub ways: u16,
    /// Line size in bytes (64 B).
    pub line_bytes: u32,
    /// Ways reserved for tracker metadata (START reserves half).
    pub reserved_ways: u16,
}

impl LlcConfig {
    /// The paper baseline: 8 MB, 16-way, 64 B lines, nothing reserved.
    pub fn paper_baseline() -> Self {
        Self { capacity_bytes: 8 << 20, ways: 16, line_bytes: 64, reserved_ways: 0 }
    }

    /// Number of sets.
    pub fn sets(&self) -> u64 {
        self.capacity_bytes / (self.ways as u64 * self.line_bytes as u64)
    }

    /// Total line count.
    pub fn lines(&self) -> u64 {
        self.capacity_bytes / self.line_bytes as u64
    }
}

/// Core-model configuration (Table I: 4 cores, OoO, 4 GHz, 4-wide, 128-entry
/// ROB).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CpuConfig {
    /// Number of cores.
    pub cores: u8,
    /// Retire width (instructions per core cycle).
    pub width: u8,
    /// Reorder-buffer entries (bounds outstanding work per core).
    pub rob_entries: u16,
}

impl CpuConfig {
    /// The paper baseline.
    pub fn paper_baseline() -> Self {
        Self { cores: 4, width: 4, rob_entries: 128 }
    }
}

/// Worker-thread policy for stepping per-channel memory shards.
///
/// This is an **execution** knob, not a **model** knob: every simulated
/// result (RunStats, telemetry windows, sweep reports) is bit-identical
/// across all variants, enforced by the engine-equivalence suite. For
/// exactly that reason the run-cache cell descriptor deliberately omits
/// it — a cached result is valid regardless of how many threads produced
/// it.
///
/// In specs and serialized configs this is spelled `"seq"`, `"auto"`, or
/// a positive integer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Threads {
    /// Step every shard on the calling thread (the reference executor).
    #[default]
    Seq,
    /// One stepping thread per channel, capped by the host's available
    /// parallelism.
    Auto,
    /// Exactly this many stepping threads (clamped to the channel count;
    /// `0` and `1` both mean sequential).
    N(usize),
}

impl Threads {
    /// The resolved number of stepping threads for `channels` shards on
    /// this host. Always `>= 1`; `1` means the sequential executor.
    pub fn worker_count(self, channels: usize) -> usize {
        let cap = channels.max(1);
        match self {
            Threads::Seq => 1,
            Threads::Auto => std::thread::available_parallelism().map_or(1, usize::from).min(cap),
            Threads::N(n) => n.clamp(1, cap),
        }
    }
}

impl std::fmt::Display for Threads {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Threads::Seq => write!(f, "seq"),
            Threads::Auto => write!(f, "auto"),
            Threads::N(n) => write!(f, "{n}"),
        }
    }
}

impl Threads {
    /// Parses the spec spelling: `"seq"`, `"auto"`, or a positive integer
    /// rendered as a string. The inverse of [`Display`](std::fmt::Display).
    pub fn parse(text: &str) -> Result<Self, String> {
        match text {
            "seq" => Ok(Threads::Seq),
            "auto" => Ok(Threads::Auto),
            other => match other.parse::<usize>() {
                Ok(n) if n >= 1 => Ok(Threads::N(n)),
                _ => Err(format!("'{other}' is not 'seq', 'auto', or a thread count >= 1")),
            },
        }
    }
}

// Marker impls for the serde shim (the spec layer's hand-rolled TOML/JSON
// is the real serialization path; see `Threads::parse` / `Display`).
impl Serialize for Threads {}
impl<'de> Deserialize<'de> for Threads {}

/// Full system configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemConfig {
    /// DRAM organisation.
    pub geometry: Geometry,
    /// Core model.
    pub cpu: CpuConfig,
    /// Shared LLC.
    pub llc: LlcConfig,
    /// RowHammer threshold N_RH (default 500; sensitivity 125..4K).
    pub nrh: u32,
    /// Blast radius: victim rows refreshed on each side of an aggressor.
    pub blast_radius: u8,
    /// Mitigation command flavour.
    pub mitigation: MitigationKind,
    /// Simulated window in bus cycles (runs may also stop on instruction
    /// count, whichever comes first).
    pub window_cycles: Cycle,
    /// Per-core instruction budget; `u64::MAX` to run purely on time.
    pub max_instructions: u64,
    /// RNG seed controlling every stochastic element of the run.
    pub seed: u64,
    /// Worker-thread policy for the sharded channel executor. Pure
    /// execution knob: results are bit-identical across variants and the
    /// run-cache descriptor excludes it.
    #[serde(default)]
    pub threads: Threads,
}

impl SystemConfig {
    /// The paper's baseline system at N_RH = 500 with a 4 ms default window
    /// (an eighth of tREFW; every bench exposes a flag to lengthen it).
    pub fn paper_baseline() -> Self {
        Self {
            geometry: Geometry::paper_baseline(),
            cpu: CpuConfig::paper_baseline(),
            llc: LlcConfig::paper_baseline(),
            nrh: 500,
            blast_radius: 1,
            mitigation: MitigationKind::Vrr,
            window_cycles: ms_to_cycles(4.0),
            max_instructions: u64::MAX,
            seed: 0xDA99E5,
            threads: Threads::Seq,
        }
    }

    /// Mitigation threshold N_M = N_RH / 2 used by DAPPER and Hydra.
    pub fn nm(&self) -> u32 {
        self.nrh / 2
    }

    /// Builder-style override of the RowHammer threshold.
    pub fn with_nrh(mut self, nrh: u32) -> Self {
        self.nrh = nrh;
        self
    }

    /// Builder-style override of the simulation window.
    pub fn with_window(mut self, cycles: Cycle) -> Self {
        self.window_cycles = cycles;
        self
    }

    /// Builder-style override of the mitigation command.
    pub fn with_mitigation(mut self, kind: MitigationKind) -> Self {
        self.mitigation = kind;
        self
    }

    /// Builder-style override of the blast radius.
    pub fn with_blast_radius(mut self, br: u8) -> Self {
        self.blast_radius = br;
        self
    }

    /// Builder-style override of the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style override of the shard-thread policy.
    pub fn with_threads(mut self, threads: Threads) -> Self {
        self.threads = threads;
        self
    }
}

impl Default for SystemConfig {
    fn default() -> Self {
        Self::paper_baseline()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_matches_table_one() {
        let c = SystemConfig::paper_baseline();
        assert_eq!(c.cpu.cores, 4);
        assert_eq!(c.cpu.rob_entries, 128);
        assert_eq!(c.llc.capacity_bytes, 8 << 20);
        assert_eq!(c.llc.ways, 16);
        assert_eq!(c.llc.sets(), 8192);
        assert_eq!(c.nrh, 500);
        assert_eq!(c.nm(), 250);
        assert_eq!(c.mitigation, MitigationKind::Vrr);
    }

    #[test]
    fn builder_overrides_compose() {
        let c = SystemConfig::paper_baseline()
            .with_nrh(125)
            .with_blast_radius(2)
            .with_mitigation(MitigationKind::DrfmSb)
            .with_seed(7);
        assert_eq!(c.nrh, 125);
        assert_eq!(c.nm(), 62);
        assert_eq!(c.blast_radius, 2);
        assert_eq!(c.mitigation, MitigationKind::DrfmSb);
        assert_eq!(c.seed, 7);
    }

    #[test]
    fn threads_resolve_and_default_to_seq() {
        assert_eq!(SystemConfig::paper_baseline().threads, Threads::Seq);
        assert_eq!(Threads::Seq.worker_count(8), 1);
        assert_eq!(Threads::N(0).worker_count(8), 1, "0 means sequential");
        assert_eq!(Threads::N(3).worker_count(8), 3);
        assert_eq!(Threads::N(64).worker_count(8), 8, "clamped to channel count");
        let auto = Threads::Auto.worker_count(8);
        assert!((1..=8).contains(&auto), "{auto}");
    }

    #[test]
    fn threads_parse_inverts_display() {
        for t in [Threads::Seq, Threads::Auto, Threads::N(4)] {
            assert_eq!(Threads::parse(&t.to_string()), Ok(t));
        }
        assert!(Threads::parse("0").is_err(), "0 threads is a config error, not Seq");
        assert!(Threads::parse("fast").is_err());
    }

    #[test]
    fn mitigation_kind_displays() {
        assert_eq!(MitigationKind::Vrr.to_string(), "VRR");
        assert_eq!(MitigationKind::DrfmSb.to_string(), "DRFMsb");
        assert_eq!(MitigationKind::RfmSb.to_string(), "RFMsb");
    }
}
