//! Content-addressed blob cache: stable hashing, a checksummed on-disk
//! store with sharded layout and atomic writes, and an in-memory LRU
//! front.
//!
//! This layer is deliberately generic — it maps hex string keys to string
//! payloads and knows nothing about experiments. The `sim` crate builds
//! the run cache on top of it (canonical cell descriptors hashed with
//! [`content_key`], simulation results as payloads), and `campaignd`
//! serves lookups from the same store.
//!
//! Guarantees:
//!
//! * **Stable keys.** [`content_key`] is a hand-rolled 128-bit FNV-1a
//!   variant with a splitmix64 finalizer — no `DefaultHasher`, whose
//!   output is explicitly unstable across releases. The same bytes hash
//!   to the same key on every platform and toolchain, which is what makes
//!   committed golden keys (and cross-machine cache sharing) sound.
//! * **Crash safety.** Entries are written to a temporary file and
//!   renamed into place, so a reader never observes a half-written
//!   entry under the final name. Every entry carries a checksum and
//!   length header; a truncated or bit-flipped entry fails decoding, is
//!   evicted from disk, and reads as a miss — corruption is never
//!   returned as a result.
//! * **Thread safety.** [`DiskStore`] takes `&self` everywhere; the LRU
//!   front is mutex-guarded and the counters are atomics, so one store
//!   can be shared across sweep workers and server connections.

use std::collections::HashMap;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::fault::{FaultAction, FaultSite, Injector};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(seed: u64, bytes: &[u8]) -> u64 {
    let mut h = seed;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// splitmix64 finalizer: avalanches the weakly-mixed FNV state so nearby
/// inputs (one-character spec edits) land in unrelated shards.
fn mix(mut z: u64) -> u64 {
    z ^= z >> 30;
    z = z.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z ^= z >> 27;
    z = z.wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// 64-bit content checksum (FNV-1a + finalizer). Used inside entry
/// headers to detect truncation and bit rot.
pub fn checksum64(bytes: &[u8]) -> u64 {
    mix(fnv1a(FNV_OFFSET, bytes))
}

/// Stable 128-bit content hash rendered as 32 lowercase hex characters —
/// the cache key for a canonical descriptor. Two independently-seeded
/// FNV-1a lanes (the second also folds in the length) make accidental
/// collisions across a sweep matrix vanishingly unlikely; the run-cache
/// layer additionally stores the full descriptor inside each entry and
/// compares it on read, so even a collision cannot alias results.
pub fn content_key(bytes: &[u8]) -> String {
    let lane0 = mix(fnv1a(FNV_OFFSET, bytes));
    let lane1 =
        mix(fnv1a(FNV_OFFSET ^ 0x9e37_79b9_7f4a_7c15, bytes).wrapping_add(bytes.len() as u64));
    format!("{lane0:016x}{lane1:016x}")
}

/// Entry-format magic, bumped if the envelope (not the payload) changes.
const MAGIC: &str = "dapper-cache1";

/// Wraps a payload in the checksummed entry envelope:
/// `dapper-cache1 <checksum-hex16> <payload-len>\n<payload>`.
pub fn encode_entry(payload: &str) -> String {
    format!("{MAGIC} {:016x} {}\n{payload}", checksum64(payload.as_bytes()), payload.len())
}

/// Unwraps an entry envelope, returning the payload only if the magic,
/// length, and checksum all verify. `None` means the entry is corrupt
/// (truncated, bit-flipped, or from a different envelope version).
pub fn decode_entry(text: &str) -> Option<&str> {
    let (header, payload) = text.split_once('\n')?;
    let mut parts = header.split(' ');
    if parts.next() != Some(MAGIC) {
        return None;
    }
    let checksum = u64::from_str_radix(parts.next()?, 16).ok()?;
    let len: usize = parts.next()?.parse().ok()?;
    if parts.next().is_some() || payload.len() != len {
        return None;
    }
    (checksum64(payload.as_bytes()) == checksum).then_some(payload)
}

/// Snapshot of a store's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered (from the LRU front or disk).
    pub hits: u64,
    /// Lookups that found nothing usable.
    pub misses: u64,
    /// Entries dropped from the in-memory LRU front (still on disk).
    pub evictions: u64,
    /// Corrupt entries detected, evicted from disk, and reported as
    /// misses (each also counts under `misses`).
    pub corrupt: u64,
    /// IO errors on reads or writes (reads also count under `misses`;
    /// writes surface as `Err` to the caller, who recomputes next time).
    pub io_errors: u64,
}

/// The in-memory LRU front: a small map of the hottest entries so warm
/// re-runs skip disk entirely.
struct LruFront {
    map: HashMap<String, (u64, String)>,
    tick: u64,
    capacity: usize,
}

impl LruFront {
    fn get(&mut self, key: &str) -> Option<String> {
        self.tick += 1;
        let tick = self.tick;
        self.map.get_mut(key).map(|slot| {
            slot.0 = tick;
            slot.1.clone()
        })
    }

    /// Inserts, returning how many entries were evicted to stay within
    /// capacity.
    fn put(&mut self, key: &str, payload: &str) -> u64 {
        self.tick += 1;
        self.map.insert(key.to_string(), (self.tick, payload.to_string()));
        let mut evicted = 0;
        while self.map.len() > self.capacity {
            // O(n) scan; the front is small (hundreds of entries).
            let coldest = self
                .map
                .iter()
                .min_by_key(|(_, (tick, _))| *tick)
                .map(|(k, _)| k.clone())
                .expect("nonempty over capacity");
            self.map.remove(&coldest);
            evicted += 1;
        }
        evicted
    }

    fn remove(&mut self, key: &str) {
        self.map.remove(key);
    }
}

/// A content-addressed key → payload store: sharded directory layout
/// (`<root>/<key[0..2]>/<key>.entry`), atomic writes, checksummed
/// entries, an LRU front, and hit/miss/evict/corrupt counters.
pub struct DiskStore {
    root: PathBuf,
    front: Mutex<LruFront>,
    tmp_seq: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    corrupt: AtomicU64,
    io_errors: AtomicU64,
    faults: OnceLock<Arc<Injector>>,
}

impl DiskStore {
    /// Default number of entries kept in the in-memory front.
    pub const DEFAULT_FRONT_CAPACITY: usize = 512;

    /// Opens (creating if needed) a store rooted at `root`.
    pub fn open(root: impl Into<PathBuf>) -> std::io::Result<DiskStore> {
        DiskStore::with_front_capacity(root, DiskStore::DEFAULT_FRONT_CAPACITY)
    }

    /// Opens a store with an explicit LRU front capacity (0 disables the
    /// front entirely; every hit then reads disk).
    pub fn with_front_capacity(
        root: impl Into<PathBuf>,
        capacity: usize,
    ) -> std::io::Result<DiskStore> {
        let root = root.into();
        std::fs::create_dir_all(&root)?;
        Ok(DiskStore {
            root,
            front: Mutex::new(LruFront { map: HashMap::new(), tick: 0, capacity }),
            tmp_seq: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            corrupt: AtomicU64::new(0),
            io_errors: AtomicU64::new(0),
            faults: OnceLock::new(),
        })
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// On-disk path of a key's entry.
    pub fn entry_path(&self, key: &str) -> PathBuf {
        let shard = if key.len() >= 2 { &key[..2] } else { "xx" };
        self.root.join(shard).join(format!("{key}.entry"))
    }

    fn lock_front(&self) -> std::sync::MutexGuard<'_, LruFront> {
        self.front.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Arms a fault [`Injector`] on this store's disk paths (chaos tests
    /// only; a store can be armed once). Unarmed stores pay a single
    /// `Option` branch per operation.
    pub fn arm_faults(&self, injector: Arc<Injector>) {
        let _ = self.faults.set(injector);
    }

    fn injected(&self, site: FaultSite) -> Option<FaultAction> {
        self.faults.get().and_then(|f| f.check(site))
    }

    /// Looks a key up: LRU front first, then disk. A corrupt disk entry
    /// (checksum or length mismatch) is evicted and reported as a miss —
    /// never returned. An unreadable entry (IO error) likewise degrades
    /// to a miss, counted under `io_errors`, so the caller recomputes
    /// instead of aborting.
    pub fn get(&self, key: &str) -> Option<String> {
        if let Some(payload) = self.lock_front().get(key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Some(payload);
        }
        let path = self.entry_path(key);
        let damage = self.injected(FaultSite::CacheRead);
        if damage == Some(FaultAction::IoError) {
            self.io_errors.fetch_add(1, Ordering::Relaxed);
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let mut text = match std::fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) => {
                if e.kind() != std::io::ErrorKind::NotFound {
                    self.io_errors.fetch_add(1, Ordering::Relaxed);
                }
                self.misses.fetch_add(1, Ordering::Relaxed);
                return None;
            }
        };
        match damage {
            Some(FaultAction::BitFlip) => {
                text = self.faults.get().expect("damage implies armed").corrupt(&text);
            }
            Some(FaultAction::Truncate) => {
                let mut keep = text.len() / 2;
                while keep > 0 && !text.is_char_boundary(keep) {
                    keep -= 1;
                }
                text.truncate(keep);
            }
            _ => {}
        }
        match decode_entry(&text) {
            Some(payload) => {
                let payload = payload.to_string();
                let evicted = self.lock_front().put(key, &payload);
                self.evictions.fetch_add(evicted, Ordering::Relaxed);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(payload)
            }
            None => {
                // Quarantine by deletion: the entry can never be served,
                // so the next put recomputes and rewrites it.
                let _ = std::fs::remove_file(&path);
                self.corrupt.fetch_add(1, Ordering::Relaxed);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Removes a key from disk and the front (used by higher layers when
    /// an entry decodes at this layer but fails semantic validation).
    pub fn evict(&self, key: &str) {
        self.lock_front().remove(key);
        let _ = std::fs::remove_file(self.entry_path(key));
        self.corrupt.fetch_add(1, Ordering::Relaxed);
    }

    /// Stores a payload under a key: temp file + fsync + rename, so
    /// concurrent readers see either the old entry or the new one, never
    /// a torn write, and a machine crash right after the rename cannot
    /// commit a name pointing at unflushed data. Last writer wins (all
    /// writers of one key hold the same deterministic payload, so the
    /// race is benign). An `Err` is recoverable: the caller keeps its
    /// computed result and simply recomputes on the next cold lookup.
    pub fn put(&self, key: &str, payload: &str) -> std::io::Result<()> {
        match self.injected(FaultSite::CacheWrite) {
            Some(FaultAction::IoError) => {
                self.io_errors.fetch_add(1, Ordering::Relaxed);
                return Err(std::io::Error::other("injected cache write error"));
            }
            Some(FaultAction::CrashBeforeRename) => {
                // Model the crash window the fsync defends: the temp file
                // is written (and flushed), but the rename never happens.
                let path = self.entry_path(key);
                let dir = path.parent().expect("entry paths always have a shard dir");
                std::fs::create_dir_all(dir)?;
                let tmp = self.tmp_path(dir, key);
                let mut file = std::fs::File::create(&tmp)?;
                file.write_all(encode_entry(payload).as_bytes())?;
                file.sync_all()?;
                self.io_errors.fetch_add(1, Ordering::Relaxed);
                return Err(std::io::Error::other("injected crash before rename"));
            }
            _ => {}
        }
        let path = self.entry_path(key);
        let dir = path.parent().expect("entry paths always have a shard dir");
        let result = (|| {
            std::fs::create_dir_all(dir)?;
            let tmp = self.tmp_path(dir, key);
            let mut file = std::fs::File::create(&tmp)?;
            file.write_all(encode_entry(payload).as_bytes())?;
            file.sync_all()?;
            drop(file);
            std::fs::rename(&tmp, &path)
        })();
        if let Err(e) = result {
            self.io_errors.fetch_add(1, Ordering::Relaxed);
            return Err(e);
        }
        let evicted = self.lock_front().put(key, payload);
        self.evictions.fetch_add(evicted, Ordering::Relaxed);
        Ok(())
    }

    fn tmp_path(&self, dir: &Path, key: &str) -> PathBuf {
        dir.join(format!(
            ".tmp-{}-{}-{key}",
            std::process::id(),
            self.tmp_seq.fetch_add(1, Ordering::Relaxed)
        ))
    }

    /// Snapshot of the counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            corrupt: self.corrupt.load(Ordering::Relaxed),
            io_errors: self.io_errors.load(Ordering::Relaxed),
        }
    }
}

impl std::fmt::Debug for DiskStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DiskStore")
            .field("root", &self.root)
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("dapper-cache-test-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn content_key_is_stable_and_collision_resistant_enough() {
        // Golden value: this constant is the committed contract. If it
        // changes, every on-disk cache key changes — bump the run-cache
        // epoch rather than silently re-keying.
        assert_eq!(content_key(b"dapper-cache-probe"), "c4c9498e34d7d6ee4e4898247f7fa54a");
        assert_eq!(content_key(b""), content_key(b""));
        assert_ne!(content_key(b"a"), content_key(b"b"));
        // Nearby inputs land far apart (finalizer avalanche).
        let a = content_key(b"spec seed=1");
        let b = content_key(b"spec seed=2");
        assert_ne!(&a[..8], &b[..8], "shard prefixes must decorrelate: {a} vs {b}");
        assert_eq!(a.len(), 32);
        assert!(a.bytes().all(|c| c.is_ascii_hexdigit()));
    }

    #[test]
    fn entry_envelope_round_trips_and_rejects_damage() {
        let entry = encode_entry("{\"x\":1}");
        assert_eq!(decode_entry(&entry), Some("{\"x\":1}"));
        // Truncation (the crash case): length check fails.
        assert_eq!(decode_entry(&entry[..entry.len() - 2]), None);
        // Bit flip in the payload: checksum fails.
        let flipped = entry.replace("{\"x\":1}", "{\"x\":2}");
        assert_eq!(decode_entry(&flipped), None);
        // Foreign format: magic fails.
        assert_eq!(decode_entry("other-format 00 7\n{\"x\":1}"), None);
        assert_eq!(decode_entry("no newline at all"), None);
    }

    #[test]
    fn store_round_trips_and_counts() {
        let store = DiskStore::open(scratch("roundtrip")).unwrap();
        assert_eq!(store.get("k1"), None);
        store.put("k1", "payload-one").unwrap();
        assert_eq!(store.get("k1").as_deref(), Some("payload-one"));
        let s = store.stats();
        assert_eq!((s.hits, s.misses, s.corrupt), (1, 1, 0));
        // A second store over the same directory reads the entry cold.
        let reopened = DiskStore::open(store.root()).unwrap();
        assert_eq!(reopened.get("k1").as_deref(), Some("payload-one"));
        assert_eq!(reopened.stats().hits, 1);
    }

    #[test]
    fn corrupt_entries_are_evicted_not_returned() {
        let store = DiskStore::with_front_capacity(scratch("corrupt"), 0).unwrap();
        store.put("deadbeef", "the-truth").unwrap();
        let path = store.entry_path("deadbeef");
        // Truncate the file mid-payload, as a crash between write and
        // rename cannot (rename is atomic) but a torn disk can.
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &text[..text.len() - 4]).unwrap();
        assert_eq!(store.get("deadbeef"), None, "corruption must read as a miss");
        assert_eq!(store.stats().corrupt, 1);
        assert!(!path.exists(), "corrupt entry must be evicted from disk");
        // Recompute-and-store works again.
        store.put("deadbeef", "the-truth").unwrap();
        assert_eq!(store.get("deadbeef").as_deref(), Some("the-truth"));
    }

    #[test]
    fn lru_front_evicts_cold_entries_but_disk_retains_them() {
        let store = DiskStore::with_front_capacity(scratch("lru"), 2).unwrap();
        for (k, v) in [("aa", "1"), ("bb", "2"), ("cc", "3")] {
            store.put(k, v).unwrap();
        }
        assert!(store.stats().evictions >= 1, "front capacity 2 must evict");
        // Evicted from the front, still served from disk.
        assert_eq!(store.get("aa").as_deref(), Some("1"));
        assert_eq!(store.get("bb").as_deref(), Some("2"));
        assert_eq!(store.get("cc").as_deref(), Some("3"));
    }

    #[test]
    fn injected_read_io_error_degrades_to_miss_and_recovers() {
        use crate::fault::FaultPlan;
        let store = DiskStore::with_front_capacity(scratch("read-io"), 0).unwrap();
        store.put("k", "truth").unwrap();
        store.arm_faults(FaultPlan::new(9).fail_cache_read_nth(0).arm());
        assert_eq!(store.get("k"), None, "injected IO error reads as a miss");
        assert_eq!(store.get("k").as_deref(), Some("truth"), "fault budget spent");
        let s = store.stats();
        assert_eq!((s.io_errors, s.misses, s.corrupt), (1, 1, 0));
        assert!(store.entry_path("k").exists(), "IO error must not evict the entry");
    }

    #[test]
    fn injected_write_io_error_is_reported_not_panicked() {
        use crate::fault::FaultPlan;
        let store = DiskStore::with_front_capacity(scratch("write-io"), 0).unwrap();
        store.arm_faults(FaultPlan::new(9).fail_cache_write_nth(0).arm());
        assert!(store.put("k", "truth").is_err());
        assert_eq!(store.stats().io_errors, 1);
        assert!(!store.entry_path("k").exists());
        // The next put succeeds and the entry round-trips.
        store.put("k", "truth").unwrap();
        assert_eq!(store.get("k").as_deref(), Some("truth"));
    }

    #[test]
    fn injected_bit_flip_and_truncation_evict_and_recompute() {
        use crate::fault::FaultPlan;
        let store = DiskStore::with_front_capacity(scratch("flip"), 0).unwrap();
        store.put("k", "the-truth").unwrap();
        store.arm_faults(FaultPlan::new(7).flip_cache_read_nth(0).truncate_cache_read_nth(1).arm());
        assert_eq!(store.get("k"), None, "bit-flipped entry must not be served");
        assert!(!store.entry_path("k").exists(), "corrupt entry evicted");
        store.put("k", "the-truth").unwrap();
        assert_eq!(store.get("k"), None, "truncated entry must not be served");
        let s = store.stats();
        assert_eq!((s.corrupt, s.io_errors), (2, 0));
        store.put("k", "the-truth").unwrap();
        assert_eq!(store.get("k").as_deref(), Some("the-truth"));
    }

    #[test]
    fn crash_before_rename_leaves_no_entry_and_no_corruption() {
        use crate::fault::FaultPlan;
        let store = DiskStore::with_front_capacity(scratch("crash"), 0).unwrap();
        store.arm_faults(FaultPlan::new(3).crash_cache_write_nth(0).arm());
        assert!(store.put("k", "v1").is_err(), "the crashed write reports failure");
        assert!(!store.entry_path("k").exists(), "nothing committed under the final name");
        assert_eq!(store.get("k"), None);
        // The orphaned temp file never aliases the entry: a later put
        // commits cleanly and reads back intact.
        store.put("k", "v1").unwrap();
        assert_eq!(store.get("k").as_deref(), Some("v1"));
        assert_eq!(store.stats().corrupt, 0);
    }

    #[test]
    fn concurrent_writers_of_one_key_stay_consistent() {
        let store = DiskStore::open(scratch("concurrent")).unwrap();
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..20 {
                        store.put("shared", "same-deterministic-payload").unwrap();
                        assert_eq!(
                            store.get("shared").as_deref(),
                            Some("same-deterministic-payload")
                        );
                    }
                });
            }
        });
        assert_eq!(store.stats().corrupt, 0);
    }
}
