//! `campaignctl` — client for the `campaignd` sweep server.
//!
//! ```text
//! campaignctl submit examples/specs/fig09_quick.toml --out report.json
//! campaignctl status 1
//! campaignctl wait 1 --out report.json
//! campaignctl stats
//! ```
//!
//! `submit` waits by default, streaming progress to stderr and writing
//! the report JSON to `--out` (or summarizing on stdout); `--async`
//! queues the job and prints its id for a later `wait`.

use campaignd::{submit_request, Client};
use sim::spec::SweepSpec;
use sim_core::json::Json;

const USAGE: &str = "campaignctl — campaignd client

USAGE: campaignctl [--socket PATH] COMMAND [ARGS]

  ping                          liveness check
  submit SPEC.toml [--async] [--out FILE]
                                submit a sweep; waits and streams progress
                                unless --async; --out writes the report JSON
  status JOB                    one-line job state
  wait JOB [--out FILE]         block until a job completes
  stats                         server counters (executions, cache hits)
  shutdown                      stop the server

  --socket PATH                 server socket (default /tmp/campaignd.sock)
";

fn field_u64(j: &Json, key: &str) -> u64 {
    match j.get(key) {
        Some(Json::Num(n)) => *n as u64,
        _ => 0,
    }
}

/// Prints a completion object's summary and optionally writes its report.
/// Quarantined cells are rendered as a failure table and turn the exit
/// status non-zero — a red sweep must not look green in a shell script.
fn finish(response: &Json, out: Option<&str>) -> Result<(), String> {
    let report = response.get("report").ok_or("response carried no report")?;
    let resumed = field_u64(response, "resumed");
    println!(
        "job {}: {} cells, {} hits{}, {} executed, {} shared",
        field_u64(response, "job"),
        field_u64(response, "cells"),
        field_u64(response, "hits"),
        if resumed > 0 { format!(" ({resumed} resumed)") } else { String::new() },
        field_u64(response, "executed"),
        field_u64(response, "shared"),
    );
    if let Some(path) = out {
        std::fs::write(path, report.render()).map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("report written to {path}");
    }
    let failures = match report.get("failures") {
        Some(Json::Arr(items)) if !items.is_empty() => items,
        _ => return Ok(()),
    };
    eprintln!("quarantined cells:");
    eprintln!("  {:>5}  {:>8}  {:<48}  message", "index", "attempts", "cell");
    for f in failures {
        let text = |key: &str| match f.get(key) {
            Some(Json::Str(s)) => s.clone(),
            _ => String::new(),
        };
        eprintln!(
            "  {:>5}  {:>8}  {:<48}  {}",
            field_u64(f, "index"),
            field_u64(f, "attempts"),
            text("cell"),
            text("message"),
        );
    }
    Err(format!("{} cell(s) quarantined", failures.len()))
}

fn expect_ok(response: Json) -> Result<Json, String> {
    match response.get("ok") {
        Some(Json::Bool(true)) => Ok(response),
        _ => {
            let message = match response.get("error") {
                Some(Json::Str(e)) => e.clone(),
                _ => response.render(),
            };
            Err(format!("server error: {message}"))
        }
    }
}

fn run() -> Result<(), String> {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        return Err(USAGE.to_string());
    }
    let mut socket = "/tmp/campaignd.sock".to_string();
    if let Some(pos) = args.iter().position(|a| a == "--socket") {
        socket = args.get(pos + 1).ok_or("--socket requires a value")?.clone();
        args.drain(pos..=pos + 1);
    }
    let mut out: Option<String> = None;
    if let Some(pos) = args.iter().position(|a| a == "--out") {
        out = Some(args.get(pos + 1).ok_or("--out requires a value")?.clone());
        args.drain(pos..=pos + 1);
    }
    let wait = if let Some(pos) = args.iter().position(|a| a == "--async") {
        args.remove(pos);
        false
    } else {
        true
    };
    let mut client =
        Client::connect(&socket).map_err(|e| format!("cannot connect to {socket}: {e}"))?;
    let command = args.first().map(String::as_str).unwrap_or("");
    match command {
        "ping" => {
            expect_ok(client.request(&Json::obj([("cmd", Json::str("ping"))])).map_err(io_err)?)?;
            println!("pong");
            Ok(())
        }
        "submit" => {
            let file = args.get(1).ok_or("submit requires a SPEC.toml path")?;
            let text =
                std::fs::read_to_string(file).map_err(|e| format!("cannot read {file}: {e}"))?;
            let spec = SweepSpec::from_toml_str(&text).map_err(|e| format!("{file}: {e}"))?;
            let request = submit_request(&spec, wait);
            if !wait {
                let response = expect_ok(client.request(&request).map_err(io_err)?)?;
                println!(
                    "job {} queued ({} cells)",
                    field_u64(&response, "job"),
                    field_u64(&response, "cells")
                );
                return Ok(());
            }
            let response = client
                .request_streaming(&request, |event| {
                    eprintln!(
                        "  progress: {}/{} cells",
                        field_u64(event, "done"),
                        field_u64(event, "cells")
                    );
                })
                .map_err(io_err)?;
            finish(&expect_ok(response)?, out.as_deref())
        }
        "status" => {
            let job = parse_job(&args)?;
            let response = expect_ok(
                client
                    .request(&Json::obj([("cmd", Json::str("status")), ("job", Json::count(job))]))
                    .map_err(io_err)?,
            )?;
            println!(
                "job {}: {} ({}/{} cells)",
                job,
                match response.get("state") {
                    Some(Json::Str(s)) => s.clone(),
                    _ => "unknown".to_string(),
                },
                field_u64(&response, "done"),
                field_u64(&response, "cells"),
            );
            Ok(())
        }
        "wait" => {
            let job = parse_job(&args)?;
            let response = expect_ok(
                client
                    .request(&Json::obj([("cmd", Json::str("wait")), ("job", Json::count(job))]))
                    .map_err(io_err)?,
            )?;
            finish(&response, out.as_deref())
        }
        "stats" => {
            let response = expect_ok(
                client.request(&Json::obj([("cmd", Json::str("stats"))])).map_err(io_err)?,
            )?;
            println!("{}", response.render());
            Ok(())
        }
        "shutdown" => {
            expect_ok(
                client.request(&Json::obj([("cmd", Json::str("shutdown"))])).map_err(io_err)?,
            )?;
            println!("server stopping");
            Ok(())
        }
        other => Err(format!("unknown command '{other}' (try --help)")),
    }
}

fn parse_job(args: &[String]) -> Result<u64, String> {
    args.get(1).and_then(|a| a.parse().ok()).ok_or_else(|| "expected a numeric job id".to_string())
}

fn io_err(e: std::io::Error) -> String {
    format!("connection failed: {e}")
}

fn main() {
    if let Err(msg) = run() {
        eprintln!("{msg}");
        std::process::exit(if msg.starts_with("campaignctl") { 2 } else { 1 });
    }
}
