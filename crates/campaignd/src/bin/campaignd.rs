//! `campaignd` — the campaign server daemon.
//!
//! ```text
//! cargo run --release --bin campaignd -- --socket /tmp/campaignd.sock --cache-dir run_cache
//! ```
//!
//! Serves sweep submissions over the unix socket until a client sends
//! `shutdown` (`campaignctl shutdown`). See the crate docs for the
//! protocol and single-flight semantics.

use campaignd::{Server, ServerConfig};
use std::path::PathBuf;

const USAGE: &str = "campaignd — campaign-as-a-service sweep server

USAGE: campaignd [--socket PATH] [--cache-dir DIR]

  --socket PATH    unix socket to listen on (default /tmp/campaignd.sock)
  --cache-dir DIR  persist results in a content-addressed run cache
";

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        return Err(USAGE.to_string());
    }
    let mut cfg = ServerConfig { socket: PathBuf::from("/tmp/campaignd.sock"), cache_dir: None };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--socket" => {
                cfg.socket = PathBuf::from(args.get(i + 1).ok_or("--socket requires a value")?);
                i += 1;
            }
            "--cache-dir" => {
                cfg.cache_dir =
                    Some(PathBuf::from(args.get(i + 1).ok_or("--cache-dir requires a value")?));
                i += 1;
            }
            other => return Err(format!("unknown argument '{other}' (try --help)")),
        }
        i += 1;
    }
    let server = Server::bind(cfg).map_err(|e| format!("cannot bind: {e}"))?;
    println!("campaignd listening on {}", server.socket().display());
    server.serve().map_err(|e| format!("serve failed: {e}"))
}

fn main() {
    if let Err(msg) = run() {
        eprintln!("{msg}");
        std::process::exit(2);
    }
}
