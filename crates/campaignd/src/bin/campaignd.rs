//! `campaignd` — the campaign server daemon.
//!
//! ```text
//! cargo run --release --bin campaignd -- --socket /tmp/campaignd.sock --cache-dir run_cache
//! ```
//!
//! Serves sweep submissions over the unix socket until a client sends
//! `shutdown` (`campaignctl shutdown`), then drains in-flight jobs
//! before exiting. See the crate docs for the protocol and single-flight
//! semantics.

use campaignd::{Server, ServerConfig};
use sim::runner::RetryPolicy;
use std::path::PathBuf;
use std::time::Duration;

const USAGE: &str = "campaignd — campaign-as-a-service sweep server

USAGE: campaignd [--socket PATH] [--cache-dir DIR] [--resume]
                 [--drain-timeout SECS] [--retries N]

  --socket PATH         unix socket to listen on (default /tmp/campaignd.sock)
  --cache-dir DIR       persist results in a content-addressed run cache
                        (also enables the checkpoint journal)
  --resume              replay the journal on startup and re-run every
                        unfinished sweep (only its unfinished cells
                        re-execute; requires --cache-dir)
  --drain-timeout SECS  cap how long shutdown waits for in-flight jobs
                        (default: wait until they finish)
  --retries N           attempt each cell up to N times with exponential
                        backoff before quarantining it (default 1)
";

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        return Err(USAGE.to_string());
    }
    let mut cfg = ServerConfig::default();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--socket" => {
                cfg.socket = PathBuf::from(args.get(i + 1).ok_or("--socket requires a value")?);
                i += 1;
            }
            "--cache-dir" => {
                cfg.cache_dir =
                    Some(PathBuf::from(args.get(i + 1).ok_or("--cache-dir requires a value")?));
                i += 1;
            }
            "--resume" => cfg.resume = true,
            "--drain-timeout" => {
                let secs: u64 = args
                    .get(i + 1)
                    .ok_or("--drain-timeout requires a value")?
                    .parse()
                    .map_err(|e| format!("--drain-timeout: {e}"))?;
                cfg.drain_timeout = Some(Duration::from_secs(secs));
                i += 1;
            }
            "--retries" => {
                let n: u32 = args
                    .get(i + 1)
                    .ok_or("--retries requires a value")?
                    .parse()
                    .map_err(|e| format!("--retries: {e}"))?;
                if n == 0 {
                    return Err("--retries must be at least 1".to_string());
                }
                cfg.retry = RetryPolicy::standard().attempts(n);
                i += 1;
            }
            other => return Err(format!("unknown argument '{other}' (try --help)")),
        }
        i += 1;
    }
    if cfg.resume && cfg.cache_dir.is_none() {
        return Err("--resume needs --cache-dir (the journal lives there)".to_string());
    }
    let server = Server::bind(cfg).map_err(|e| format!("cannot bind: {e}"))?;
    if server.resumed_sweeps() > 0 {
        println!(
            "campaignd resumed {} unfinished sweep(s) from the journal",
            server.resumed_sweeps()
        );
    }
    println!("campaignd listening on {}", server.socket().display());
    server.serve().map_err(|e| format!("serve failed: {e}"))
}

fn main() {
    if let Err(msg) = run() {
        eprintln!("{msg}");
        std::process::exit(2);
    }
}
