//! campaignd — campaign-as-a-service over the content-addressed run
//! cache.
//!
//! A long-running job-queue server accepts declarative sweep submissions
//! ([`sim::spec::SweepSpec`] cells) from many concurrent clients over a
//! unix socket, schedules cold cells on the panic-safe parallel worker
//! pool, answers warm cells from the [`sim::cache::RunCache`] without
//! simulation, and streams progress/completion events back. The
//! `campaignctl` bin is the bundled client.
//!
//! # Protocol
//!
//! Line-delimited JSON (via [`sim_core::json`]), one request object per
//! line, answered by one response object per line — except a
//! `submit`-and-wait, which streams `{"event":"progress",...}` lines
//! before the final response. Every final response carries `"ok"`
//! (`true`/`false`); errors carry `"error"`.
//!
//! | request | response |
//! |---|---|
//! | `{"cmd":"ping"}` | `{"ok":true,"pong":true}` |
//! | `{"cmd":"submit","spec":{...},"wait":true}` | progress events, then `{"ok":true,"job":N,"report":{...},"cells":C,"hits":H,"executed":X,"shared":S}` |
//! | `{"cmd":"submit","spec":{...}}` | `{"ok":true,"job":N,"cells":C}` (job runs in the background) |
//! | `{"cmd":"status","job":N}` | `{"ok":true,"job":N,"state":"running"\|"done"\|"failed","done":D,"cells":C}` |
//! | `{"cmd":"wait","job":N}` | blocks, then the same completion object `submit`-and-wait ends with |
//! | `{"cmd":"lookup","spec":{...ExperimentSpec...}}` | `{"ok":true,"cached":bool,"result":row\|null}` — never simulates |
//! | `{"cmd":"stats"}` | `{"ok":true,"executed":X,"jobs":J,"cache":{...}\|null}` |
//! | `{"cmd":"shutdown"}` | `{"ok":true,"stopping":true}`, then the server drains |
//!
//! # Single-flight
//!
//! Every cell canonicalizes to its [`sim::cache::CellKey`]. The server
//! keeps one table of cell states (in-flight or done); the first
//! submission to claim a key owns it and simulates, every other
//! submission — concurrent or later — blocks on the same entry and
//! shares the owner's result. The `executed` counter counts actual
//! simulations, so two clients submitting the same sweep concurrently
//! drive it up by the number of *unique* cells, not twice that.
//! Completed cells also persist to the disk cache (when one is
//! configured), so a restarted server stays warm; failed cells are
//! memoized in memory for the server's lifetime but never written to
//! disk, and anonymous custom attacks (no canonical key) always run.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use sim::cache::{cell_key, CellKey, RunCache};
use sim::experiment::ExperimentResult;
use sim::journal::SweepJournal;
use sim::runner::{try_run_parallel_observed, RetryPolicy, RunnerConfig, SweepError};
use sim::spec::{result_to_json, ExperimentSpec, SweepReport, SweepSpec};
use sim::Experiment;
use sim_core::fault::{FaultAction, FaultSite, Injector};
use sim_core::json::Json;
use std::collections::{HashMap, HashSet};
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

fn relock<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A quarantined cell, shared between submissions: the attribution the
/// runner produced, minus the per-submission slot index.
#[derive(Debug, Clone)]
struct CellFailure {
    cell: String,
    message: String,
    attempts: u32,
}

/// One simulated (or failed) cell, shared between every submission that
/// canonicalizes to the same key.
type CellOutcome = Result<ExperimentResult, CellFailure>;

enum CellState {
    /// Claimed by a submission that is simulating it right now.
    InFlight,
    /// Finished; every waiter shares this outcome.
    Done(Arc<CellOutcome>),
}

/// A submitted sweep's lifecycle, observable via `status`/`wait`.
struct Job {
    id: u64,
    cells: usize,
    done: AtomicUsize,
    /// Completion object (or submission-level error), set exactly once.
    finished: Mutex<Option<Result<Json, String>>>,
    cv: Condvar,
}

impl Job {
    fn finish(&self, outcome: Result<Json, String>) {
        *relock(&self.finished) = Some(outcome);
        self.cv.notify_all();
    }

    fn wait(&self) -> Result<Json, String> {
        let mut guard = relock(&self.finished);
        loop {
            if let Some(outcome) = guard.as_ref() {
                return outcome.clone();
            }
            guard = self.cv.wait(guard).unwrap_or_else(PoisonError::into_inner);
        }
    }

    fn state(&self) -> &'static str {
        match relock(&self.finished).as_ref() {
            None => "running",
            Some(Ok(_)) => "done",
            Some(Err(_)) => "failed",
        }
    }
}

struct Inner {
    socket: PathBuf,
    cache: Option<RunCache>,
    /// Checkpoint journal, opened alongside the cache dir: completed cell
    /// keys are logged so a restarted server re-executes only the
    /// unfinished remainder of an interrupted sweep.
    journal: Option<SweepJournal>,
    /// Sweep hashes whose `start` record this process already wrote.
    journaled: Mutex<HashSet<String>>,
    /// Retry/backoff policy applied to every simulated cell.
    retry: RetryPolicy,
    /// Armed fault plan (chaos tests only).
    faults: Option<Arc<Injector>>,
    cells: Mutex<HashMap<String, CellState>>,
    cells_cv: Condvar,
    executed: AtomicU64,
    jobs: Mutex<HashMap<u64, Arc<Job>>>,
    next_job: AtomicU64,
    /// Jobs created but not yet finished — what a graceful drain waits on.
    active_jobs: AtomicUsize,
    /// Sweeps resurrected from the journal at startup.
    resumed_sweeps: AtomicU64,
    shutdown: AtomicBool,
    /// Set with `shutdown`: new submissions are rejected while in-flight
    /// jobs drain.
    draining: AtomicBool,
}

impl Inner {
    fn complete_cell(&self, key: &str, outcome: Arc<CellOutcome>) {
        relock(&self.cells).insert(key.to_string(), CellState::Done(outcome));
        self.cells_cv.notify_all();
    }

    /// Blocks until another submission finishes the cell. Sound because
    /// an owner always completes every cell it claims: per-cell panics
    /// are caught by the worker pool and recorded as `Done(Err(..))`.
    fn wait_for_cell(&self, key: &str) -> Arc<CellOutcome> {
        let mut table = relock(&self.cells);
        loop {
            if let Some(CellState::Done(outcome)) = table.get(key) {
                return outcome.clone();
            }
            table = self.cells_cv.wait(table).unwrap_or_else(PoisonError::into_inner);
        }
    }
}

/// How each cell of a submission will be satisfied.
enum Slot {
    /// Another submission already finished it.
    Ready(Arc<CellOutcome>),
    /// This submission claimed it (cache lookup, then simulate).
    Owned,
    /// Another submission is simulating it; wait and share.
    Waiting,
}

/// Runs one submission to completion, returning the completion object.
/// The claim/own/wait choreography is the single-flight core: each
/// unique cell key is simulated by exactly one submission.
fn run_job(inner: &Inner, job: &Job, spec: &SweepSpec, experiments: Vec<Experiment>) -> Json {
    let keys: Vec<Option<CellKey>> = experiments.iter().map(cell_key).collect();
    // Checkpoint bookkeeping: pin the sweep's identity in the journal
    // (once per process) and learn which cells a previous incarnation
    // already committed, so the completion object can report them as
    // `resumed`.
    let sweep_hash = inner.journal.as_ref().map(|_| SweepJournal::sweep_hash(spec));
    let journaled: HashSet<String> = match (&inner.journal, &sweep_hash) {
        (Some(journal), Some(hash)) => {
            if relock(&inner.journaled).insert(hash.clone()) {
                let _ = journal.record_start(hash, spec, experiments.len() as u64);
            }
            journal
                .load()
                .map(|state| state.completed(hash).into_iter().collect())
                .unwrap_or_default()
        }
        _ => HashSet::new(),
    };
    let mut shared = 0usize;
    let mut slots: Vec<Slot> = Vec::with_capacity(experiments.len());
    {
        // One lock pass claims every unclaimed cell atomically, so two
        // concurrent submissions of the same sweep partition it instead
        // of both running it.
        let mut table = relock(&inner.cells);
        for key in &keys {
            slots.push(match key {
                None => Slot::Owned, // uncacheable: always simulate
                Some(k) => match table.get(&k.key) {
                    Some(CellState::Done(outcome)) => {
                        shared += 1;
                        job.done.fetch_add(1, Ordering::Relaxed);
                        Slot::Ready(outcome.clone())
                    }
                    Some(CellState::InFlight) => {
                        shared += 1;
                        Slot::Waiting
                    }
                    None => {
                        table.insert(k.key.clone(), CellState::InFlight);
                        Slot::Owned
                    }
                },
            });
        }
    }
    // Owned cells try the disk cache first — a warm server answers them
    // with zero simulation. Hits whose keys the journal marked completed
    // are the resumed remainder of an interrupted sweep.
    let mut hits = 0usize;
    let mut resumed = 0usize;
    if let Some(cache) = &inner.cache {
        for (i, slot) in slots.iter_mut().enumerate() {
            if !matches!(slot, Slot::Owned) {
                continue;
            }
            if let Some(key) = &keys[i] {
                if let Some(result) = cache.lookup(key) {
                    let outcome = Arc::new(Ok(result));
                    inner.complete_cell(&key.key, outcome.clone());
                    *slot = Slot::Ready(outcome);
                    hits += 1;
                    if journaled.contains(&key.key) {
                        resumed += 1;
                    }
                    job.done.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }
    // Simulate the remaining owned cells on the parallel worker pool.
    let mut run_cells = Vec::new();
    let mut run_jobs = Vec::new();
    for (i, slot) in slots.iter().enumerate() {
        if matches!(slot, Slot::Owned) {
            run_cells.push(i);
            run_jobs.push(experiments[i].clone());
        }
    }
    let executed = run_jobs.len();
    inner.executed.fetch_add(executed as u64, Ordering::Relaxed);
    let runner = RunnerConfig { retry: inner.retry.clone(), faults: inner.faults.clone() };
    // Each cell is checkpointed from the worker thread the moment it
    // settles — cache save, then journal (strictly after the cache
    // commit, so the journal never claims a result the cache lacks),
    // then the single-flight table so waiters and progress probes see it
    // immediately. A `kill -9` mid-sweep therefore loses at most the
    // cells still in flight, not the whole batch.
    let on_done = |j: usize, outcome: &Result<ExperimentResult, SweepError>| {
        let i = run_cells[j];
        let outcome = Arc::new(match outcome {
            Ok(result) => {
                if let (Some(cache), Some(key)) = (&inner.cache, &keys[i]) {
                    cache.save(key, result);
                    if let (Some(journal), Some(hash)) = (&inner.journal, &sweep_hash) {
                        let _ = journal.record_cell(hash, &key.key);
                    }
                }
                Ok(result.clone())
            }
            Err(e) => Err(CellFailure {
                cell: e.cell.clone(),
                message: e.message.clone(),
                attempts: e.attempts,
            }),
        });
        if let Some(key) = &keys[i] {
            inner.complete_cell(&key.key, outcome);
        }
        job.done.fetch_add(1, Ordering::Relaxed);
    };
    for (j, outcome) in
        try_run_parallel_observed(run_jobs, &runner, on_done).into_iter().enumerate()
    {
        let i = run_cells[j];
        slots[i] = Slot::Ready(Arc::new(match outcome {
            Ok(result) => Ok(result),
            Err(e) => Err(CellFailure { cell: e.cell, message: e.message, attempts: e.attempts }),
        }));
    }
    // Collect the cells other submissions are simulating.
    for (i, slot) in slots.iter_mut().enumerate() {
        if matches!(slot, Slot::Waiting) {
            let key = keys[i].as_ref().expect("only keyed cells wait");
            *slot = Slot::Ready(inner.wait_for_cell(&key.key));
            job.done.fetch_add(1, Ordering::Relaxed);
        }
    }
    // Assemble the report in expansion order: identical submissions
    // yield byte-identical reports regardless of who simulated what.
    let mut results = Vec::new();
    let mut failures = Vec::new();
    for (i, slot) in slots.iter().enumerate() {
        let Slot::Ready(outcome) = slot else { unreachable!("every slot resolves") };
        match outcome.as_ref() {
            Ok(result) => results.push(result.clone()),
            Err(f) => failures.push(SweepError {
                index: i,
                cell: f.cell.clone(),
                message: f.message.clone(),
                attempts: f.attempts,
            }),
        }
    }
    // A clean pass closes the sweep's journal entry; a pass with
    // quarantined cells leaves it open so a resubmit (or a restart with
    // --resume) retries only the failures.
    if failures.is_empty() {
        if let (Some(journal), Some(hash)) = (&inner.journal, &sweep_hash) {
            let _ = journal.record_end(hash);
        }
    }
    let cells = slots.len();
    let report = SweepReport { name: spec.name.clone(), spec: spec.clone(), results, failures };
    Json::obj([
        ("job", Json::count(job.id)),
        ("cells", Json::count(cells as u64)),
        ("hits", Json::count(hits as u64)),
        ("resumed", Json::count(resumed as u64)),
        ("executed", Json::count(executed as u64)),
        ("shared", Json::count(shared as u64)),
        ("report", report.to_json()),
    ])
}

fn err_json(message: impl std::fmt::Display) -> Json {
    Json::obj([("ok", Json::Bool(false)), ("error", Json::str(message.to_string()))])
}

fn ok_json(extra: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
    let mut pairs = vec![("ok".to_string(), Json::Bool(true))];
    pairs.extend(extra.into_iter().map(|(k, v)| (k.to_string(), v)));
    Json::Obj(pairs)
}

/// Merges a completion object into an `ok` response.
fn completion_json(outcome: Result<Json, String>) -> Json {
    match outcome {
        Ok(Json::Obj(pairs)) => {
            let mut merged = vec![("ok".to_string(), Json::Bool(true))];
            merged.extend(pairs);
            Json::Obj(merged)
        }
        Ok(other) => ok_json([("report", other)]),
        Err(message) => err_json(message),
    }
}

fn cache_stats_json(cache: &RunCache) -> Json {
    let s = cache.stats();
    Json::obj([
        ("hits", Json::count(s.hits)),
        ("misses", Json::count(s.misses)),
        ("evictions", Json::count(s.evictions)),
        ("corrupt", Json::count(s.corrupt)),
        ("io_errors", Json::count(s.io_errors)),
    ])
}

fn write_line(stream: &mut UnixStream, msg: &Json) -> std::io::Result<()> {
    let mut line = msg.render();
    line.push('\n');
    stream.write_all(line.as_bytes())
}

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Unix-socket path to listen on. The server owns the path: a stale
    /// file from a previous run is replaced on bind.
    pub socket: PathBuf,
    /// Run-cache directory; `None` serves purely from the in-memory
    /// cell table (single-flight still applies, nothing persists). A
    /// cache dir also carries the checkpoint journal
    /// ([`sim::journal::SweepJournal::FILE_NAME`]).
    pub cache_dir: Option<PathBuf>,
    /// Replay the journal on startup and re-run every unfinished sweep
    /// as a background job — completed cells answer from the cache, only
    /// the interrupted remainder re-executes.
    pub resume: bool,
    /// How long `shutdown` waits for in-flight jobs before exiting
    /// anyway (`None` = wait until they all finish).
    pub drain_timeout: Option<Duration>,
    /// Retry/backoff/timeout policy for every simulated cell.
    pub retry: RetryPolicy,
    /// Armed fault plan (chaos tests only; `None` costs one branch).
    pub faults: Option<Arc<Injector>>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            socket: PathBuf::from("/tmp/campaignd.sock"),
            cache_dir: None,
            resume: false,
            drain_timeout: None,
            retry: RetryPolicy::none(),
            faults: None,
        }
    }
}

/// The campaign server: bind once, then [`Server::serve`] until a
/// `shutdown` request arrives.
pub struct Server {
    inner: Arc<Inner>,
    listener: UnixListener,
    drain_timeout: Option<Duration>,
}

impl Server {
    /// Binds the socket, opens the cache and journal, and (with
    /// `cfg.resume`) resurrects every unfinished journaled sweep as a
    /// background job.
    pub fn bind(cfg: ServerConfig) -> std::io::Result<Server> {
        if cfg.socket.exists() {
            std::fs::remove_file(&cfg.socket)?;
        }
        let listener = UnixListener::bind(&cfg.socket)?;
        let cache = cfg.cache_dir.as_ref().map(RunCache::open).transpose()?;
        let journal = cfg.cache_dir.as_ref().map(SweepJournal::in_cache_dir).transpose()?;
        let inner = Arc::new(Inner {
            socket: cfg.socket,
            cache,
            journal,
            journaled: Mutex::new(HashSet::new()),
            retry: cfg.retry,
            faults: cfg.faults,
            cells: Mutex::new(HashMap::new()),
            cells_cv: Condvar::new(),
            executed: AtomicU64::new(0),
            jobs: Mutex::new(HashMap::new()),
            next_job: AtomicU64::new(1),
            active_jobs: AtomicUsize::new(0),
            resumed_sweeps: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            draining: AtomicBool::new(false),
        });
        if cfg.resume {
            resume_unfinished(&inner);
        }
        Ok(Server { inner, listener, drain_timeout: cfg.drain_timeout })
    }

    /// The socket path being served.
    pub fn socket(&self) -> &Path {
        &self.inner.socket
    }

    /// Total simulations performed since startup — the single-flight
    /// witness: concurrent identical submissions move this by the number
    /// of unique cells.
    pub fn executed(&self) -> u64 {
        self.inner.executed.load(Ordering::Relaxed)
    }

    /// Sweeps resurrected from the journal at startup.
    pub fn resumed_sweeps(&self) -> u64 {
        self.inner.resumed_sweeps.load(Ordering::Relaxed)
    }

    /// Accepts connections (one thread each) until a `shutdown` request,
    /// then drains: in-flight jobs run to completion (bounded by the
    /// configured drain timeout) before the socket file is removed.
    pub fn serve(self) -> std::io::Result<()> {
        for stream in self.listener.incoming() {
            if self.inner.shutdown.load(Ordering::Relaxed) {
                break;
            }
            let Ok(stream) = stream else { continue };
            let inner = self.inner.clone();
            std::thread::spawn(move || handle_connection(&inner, stream));
        }
        // Graceful drain: every accepted job still finishes (and lands in
        // the cache + journal) unless the timeout expires first — a
        // drained shutdown loses nothing, a timed-out one loses only
        // what the journal lets the next incarnation resume.
        let deadline = self.drain_timeout.map(|t| Instant::now() + t);
        while self.inner.active_jobs.load(Ordering::Relaxed) > 0 {
            if deadline.is_some_and(|d| Instant::now() >= d) {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        let _ = std::fs::remove_file(&self.inner.socket);
        Ok(())
    }
}

/// Replays the journal and re-submits every unfinished sweep as a
/// background job. Completed cells answer from the cache; only the
/// interrupted remainder re-executes (the chaos suite asserts the resumed
/// report is byte-identical to an uninterrupted run).
fn resume_unfinished(inner: &Arc<Inner>) {
    let Some(journal) = &inner.journal else { return };
    let Ok(state) = journal.load() else { return };
    for (hash, progress) in state.unfinished() {
        let Some(spec_json) = &progress.spec_json else { continue };
        let Ok(spec) = SweepSpec::from_json_str(spec_json) else { continue };
        let Ok(experiments) = spec.expand() else { continue };
        // The start record is already on disk; don't write a second one.
        relock(&inner.journaled).insert(hash.clone());
        inner.resumed_sweeps.fetch_add(1, Ordering::Relaxed);
        spawn_background_job(inner, spec, experiments);
    }
}

/// Creates a job and drives it on a detached thread; returns `(id, cells)`.
fn spawn_background_job(
    inner: &Arc<Inner>,
    spec: SweepSpec,
    experiments: Vec<Experiment>,
) -> (u64, usize) {
    let job = Arc::new(Job {
        id: inner.next_job.fetch_add(1, Ordering::Relaxed),
        cells: experiments.len(),
        done: AtomicUsize::new(0),
        finished: Mutex::new(None),
        cv: Condvar::new(),
    });
    relock(&inner.jobs).insert(job.id, job.clone());
    inner.active_jobs.fetch_add(1, Ordering::Relaxed);
    let (job_id, cells) = (job.id, experiments.len());
    let inner = inner.clone();
    std::thread::spawn(move || {
        let completion = run_job(&inner, &job, &spec, experiments);
        job.finish(Ok(completion));
        inner.active_jobs.fetch_sub(1, Ordering::Relaxed);
    });
    (job_id, cells)
}

fn handle_connection(inner: &Arc<Inner>, mut stream: UnixStream) {
    let Ok(read_half) = stream.try_clone() else { return };
    let mut reader = BufReader::new(read_half);
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => return,
            Ok(_) => {}
        }
        let text = line.trim();
        if text.is_empty() {
            continue;
        }
        let response = match Json::parse(text) {
            Ok(request) => dispatch(inner, &request, &mut stream),
            Err(e) => Some(err_json(format!("bad request: {e}"))),
        };
        if let Some(response) = response {
            if write_line(&mut stream, &response).is_err() {
                return;
            }
        }
        if inner.shutdown.load(Ordering::Relaxed) {
            // Wake the acceptor so serve() can observe the flag.
            let _ = UnixStream::connect(&inner.socket);
            return;
        }
    }
}

/// Handles one request; `None` means the handler already wrote its
/// response(s) (the streaming submit path).
fn dispatch(inner: &Arc<Inner>, request: &Json, stream: &mut UnixStream) -> Option<Json> {
    let cmd = match request.get("cmd") {
        Some(Json::Str(cmd)) => cmd.as_str(),
        _ => return Some(err_json("missing 'cmd'")),
    };
    match cmd {
        "ping" => Some(ok_json([("pong", Json::Bool(true))])),
        "submit" => submit(inner, request, stream),
        "status" => Some(match lookup_job(inner, request) {
            Ok(job) => ok_json([
                ("job", Json::count(job.id)),
                ("state", Json::str(job.state())),
                ("done", Json::count(job.done.load(Ordering::Relaxed) as u64)),
                ("cells", Json::count(job.cells as u64)),
            ]),
            Err(e) => e,
        }),
        "wait" => Some(match lookup_job(inner, request) {
            Ok(job) => completion_json(job.wait()),
            Err(e) => e,
        }),
        "lookup" => Some(lookup_cell(inner, request)),
        "stats" => Some(ok_json([
            ("executed", Json::count(inner.executed.load(Ordering::Relaxed))),
            ("jobs", Json::count(relock(&inner.jobs).len() as u64)),
            ("active", Json::count(inner.active_jobs.load(Ordering::Relaxed) as u64)),
            ("resumed_sweeps", Json::count(inner.resumed_sweeps.load(Ordering::Relaxed))),
            ("draining", Json::Bool(inner.draining.load(Ordering::Relaxed))),
            ("cache", inner.cache.as_ref().map_or(Json::Null, cache_stats_json)),
        ])),
        "shutdown" => {
            // Draining first: submissions racing the shutdown are
            // rejected instead of silently competing with the drain.
            inner.draining.store(true, Ordering::Relaxed);
            inner.shutdown.store(true, Ordering::Relaxed);
            Some(ok_json([("stopping", Json::Bool(true))]))
        }
        other => Some(err_json(format!("unknown cmd '{other}'"))),
    }
}

fn lookup_job(inner: &Inner, request: &Json) -> Result<Arc<Job>, Json> {
    let id = match request.get("job") {
        Some(Json::Num(n)) if *n >= 0.0 && n.fract() == 0.0 => *n as u64,
        _ => return Err(err_json("missing or invalid 'job'")),
    };
    relock(&inner.jobs).get(&id).cloned().ok_or_else(|| err_json(format!("unknown job {id}")))
}

/// Answers a cache lookup for a single experiment cell — never
/// simulates.
fn lookup_cell(inner: &Inner, request: &Json) -> Json {
    let Some(spec_json) = request.get("spec") else {
        return err_json("missing 'spec'");
    };
    let experiment =
        ExperimentSpec::from_json_str(&spec_json.render()).and_then(|s| s.to_experiment());
    let experiment = match experiment {
        Ok(e) => e,
        Err(e) => return err_json(e),
    };
    let Some(key) = cell_key(&experiment) else {
        return err_json("cell is uncacheable");
    };
    if let Some(CellState::Done(outcome)) = relock(&inner.cells).get(&key.key) {
        if let Ok(result) = outcome.as_ref() {
            return ok_json([("cached", Json::Bool(true)), ("result", result_to_json(result))]);
        }
    }
    if let Some(result) = inner.cache.as_ref().and_then(|c| c.lookup(&key)) {
        return ok_json([("cached", Json::Bool(true)), ("result", result_to_json(&result))]);
    }
    ok_json([("cached", Json::Bool(false)), ("result", Json::Null)])
}

/// One `{"event":"progress",...}` line of a waiting submit: `done` of
/// `cells` sweep cells finished for job `job`. Public so dashboards (the
/// profiler's `warroom` TUI) can build and parse the exact wire shape the
/// server streams.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProgressEvent {
    /// Server-assigned job id.
    pub job: u64,
    /// Cells completed so far.
    pub done: u64,
    /// Total cells in the job.
    pub cells: u64,
}

impl ProgressEvent {
    /// Serializes to the wire shape `submit` streams.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("event", Json::str("progress")),
            ("job", Json::count(self.job)),
            ("done", Json::count(self.done)),
            ("cells", Json::count(self.cells)),
        ])
    }

    /// Parses a streamed line; `None` when the object is not a progress
    /// event (e.g. the final completion response).
    pub fn from_json(j: &Json) -> Option<Self> {
        match j.get("event") {
            Some(Json::Str(s)) if s == "progress" => {}
            _ => return None,
        }
        let count = |key: &str| match j.get(key) {
            Some(Json::Num(n)) if *n >= 0.0 => Some(*n as u64),
            _ => None,
        };
        Some(Self { job: count("job")?, done: count("done")?, cells: count("cells")? })
    }

    /// Completion fraction in `[0, 1]` (1 for an empty job).
    pub fn fraction(&self) -> f64 {
        if self.cells == 0 {
            1.0
        } else {
            self.done as f64 / self.cells as f64
        }
    }
}

fn submit(inner: &Arc<Inner>, request: &Json, stream: &mut UnixStream) -> Option<Json> {
    if inner.draining.load(Ordering::Relaxed) {
        return Some(err_json("server is draining (shutdown in progress)"));
    }
    let Some(spec_json) = request.get("spec") else {
        return Some(err_json("missing 'spec'"));
    };
    let spec = match SweepSpec::from_json_str(&spec_json.render()) {
        Ok(spec) => spec,
        Err(e) => return Some(err_json(e)),
    };
    // Expanding up front rejects broken specs before a job exists and
    // fixes the cell count for progress reporting.
    let experiments = match spec.expand() {
        Ok(experiments) => experiments,
        Err(e) => return Some(err_json(e)),
    };
    let wait = matches!(request.get("wait"), Some(Json::Bool(true)));
    if !wait {
        let (job_id, cells) = spawn_background_job(inner, spec, experiments);
        return Some(ok_json([("job", Json::count(job_id)), ("cells", Json::count(cells as u64))]));
    }
    let job = Arc::new(Job {
        id: inner.next_job.fetch_add(1, Ordering::Relaxed),
        cells: experiments.len(),
        done: AtomicUsize::new(0),
        finished: Mutex::new(None),
        cv: Condvar::new(),
    });
    relock(&inner.jobs).insert(job.id, job.clone());
    inner.active_jobs.fetch_add(1, Ordering::Relaxed);
    // Waiting submit: drive the job on a scoped worker while this thread
    // streams progress events.
    std::thread::scope(|scope| {
        let worker_job = job.clone();
        let worker_spec = &spec;
        scope.spawn(move || {
            let completion = run_job(inner, &worker_job, worker_spec, experiments);
            worker_job.finish(Ok(completion));
            inner.active_jobs.fetch_sub(1, Ordering::Relaxed);
        });
        let mut last = usize::MAX;
        loop {
            // Chaos hook: sever the client mid-stream. The job keeps
            // running — the cell table, cache and journal all still
            // win — and a reconnecting client shares its results.
            if inner.faults.as_ref().and_then(|f| f.check(FaultSite::ClientStream))
                == Some(FaultAction::Disconnect)
            {
                let _ = stream.shutdown(std::net::Shutdown::Both);
            }
            let finished = relock(&job.finished).is_some();
            let done = job.done.load(Ordering::Relaxed);
            if done != last && !finished {
                last = done;
                let event =
                    ProgressEvent { job: job.id, done: done as u64, cells: job.cells as u64 }
                        .to_json();
                // A vanished client must not wedge the job: keep driving
                // it to completion (the cell table and cache still win).
                let _ = write_line(stream, &event);
            }
            if finished {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(25));
        }
    });
    Some(completion_json(job.wait()))
}

/// A blocking line-protocol client (what `campaignctl` and the tests
/// speak).
pub struct Client {
    reader: BufReader<UnixStream>,
    writer: UnixStream,
}

impl Client {
    /// Connects to a running server's socket.
    pub fn connect(path: impl AsRef<Path>) -> std::io::Result<Client> {
        let writer = UnixStream::connect(path)?;
        let reader = BufReader::new(writer.try_clone()?);
        Ok(Client { reader, writer })
    }

    /// Sends one request line.
    pub fn send(&mut self, request: &Json) -> std::io::Result<()> {
        let mut line = request.render();
        line.push('\n');
        self.writer.write_all(line.as_bytes())
    }

    /// Receives one response line.
    pub fn recv(&mut self) -> std::io::Result<Json> {
        let mut line = String::new();
        loop {
            line.clear();
            if self.reader.read_line(&mut line)? == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "server closed the connection",
                ));
            }
            let text = line.trim();
            if text.is_empty() {
                continue;
            }
            return Json::parse(text).map_err(|e| {
                std::io::Error::new(std::io::ErrorKind::InvalidData, format!("bad response: {e}"))
            });
        }
    }

    /// One request, one response.
    pub fn request(&mut self, request: &Json) -> std::io::Result<Json> {
        self.send(request)?;
        self.recv()
    }

    /// One request, streaming intermediate events (objects without an
    /// `"ok"` member) to `on_event`, returning the final response.
    pub fn request_streaming(
        &mut self,
        request: &Json,
        mut on_event: impl FnMut(&Json),
    ) -> std::io::Result<Json> {
        self.send(request)?;
        loop {
            let msg = self.recv()?;
            if msg.get("ok").is_some() {
                return Ok(msg);
            }
            on_event(&msg);
        }
    }
}

/// Builds a `submit` request for a sweep spec.
pub fn submit_request(spec: &SweepSpec, wait: bool) -> Json {
    Json::obj([("cmd", Json::str("submit")), ("spec", spec.to_json()), ("wait", Json::Bool(wait))])
}
