//! End-to-end exercises of the campaign server over a real unix socket:
//! single-flight dedup between concurrent clients, warm-cache restarts,
//! and the async submit/status/wait lifecycle.

use campaignd::{submit_request, Client, Server, ServerConfig};
use sim::spec::SweepSpec;
use sim_core::json::Json;
use std::path::PathBuf;

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("campaignd-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// Two unique cells, short window: fast enough to simulate for real.
fn tiny_spec() -> SweepSpec {
    let mut spec = SweepSpec::new("campaignd_smoke");
    spec.workloads = vec!["mcf_like".to_string()];
    spec.trackers = vec!["none".to_string(), "para".to_string()];
    spec.options.window_us = Some(20.0);
    spec.options.seed = Some(7);
    spec
}

fn start(dir: &std::path::Path, tag: &str) -> PathBuf {
    let socket = dir.join(format!("{tag}.sock"));
    let server =
        Server::bind(ServerConfig { socket: socket.clone(), cache_dir: Some(dir.join("cache")) })
            .expect("bind");
    std::thread::spawn(move || server.serve().expect("serve"));
    socket
}

fn field_u64(j: &Json, key: &str) -> u64 {
    match j.get(key) {
        Some(Json::Num(n)) => *n as u64,
        _ => panic!("missing numeric '{key}' in {}", j.render()),
    }
}

fn assert_ok(j: &Json) {
    assert!(matches!(j.get("ok"), Some(Json::Bool(true))), "not ok: {}", j.render());
}

fn server_executed(socket: &std::path::Path) -> u64 {
    let mut client = Client::connect(socket).expect("connect");
    let stats = client.request(&Json::obj([("cmd", Json::str("stats"))])).expect("stats");
    assert_ok(&stats);
    field_u64(&stats, "executed")
}

fn shutdown(socket: &std::path::Path) {
    let mut client = Client::connect(socket).expect("connect");
    assert_ok(&client.request(&Json::obj([("cmd", Json::str("shutdown"))])).expect("shutdown"));
}

#[test]
fn concurrent_identical_submissions_run_each_cell_once() {
    let dir = scratch("single-flight");
    let socket = start(&dir, "a");
    let spec = tiny_spec();

    // Two clients race the same two-cell sweep.
    let completions: Vec<Json> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let (socket, spec) = (socket.clone(), spec.clone());
                scope.spawn(move || {
                    let mut client = Client::connect(&socket).expect("connect");
                    client
                        .request_streaming(&submit_request(&spec, true), |_event| {})
                        .expect("submit")
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client thread")).collect()
    });
    for c in &completions {
        assert_ok(c);
        assert_eq!(field_u64(c, "cells"), 2);
    }
    // Byte-identical reports no matter which submission simulated what.
    let reports: Vec<String> =
        completions.iter().map(|c| c.get("report").expect("report").render()).collect();
    assert_eq!(reports[0], reports[1]);
    // Single-flight witness: 2 unique cells → exactly 2 simulations.
    assert_eq!(server_executed(&socket), 2);
    assert_eq!(field_u64(&completions[0], "executed") + field_u64(&completions[1], "executed"), 2);

    // A third submission is answered wholly from the in-memory table.
    let mut client = Client::connect(&socket).expect("connect");
    let warm = client.request_streaming(&submit_request(&spec, true), |_| {}).expect("resubmit");
    assert_ok(&warm);
    assert_eq!(field_u64(&warm, "executed"), 0);
    assert_eq!(field_u64(&warm, "shared"), 2);
    assert_eq!(warm.get("report").expect("report").render(), reports[0]);
    assert_eq!(server_executed(&socket), 2);

    // A cell lookup answers from cache without simulating.
    let cell = Json::obj([
        ("workload", Json::str("mcf_like")),
        ("tracker", Json::str("para")),
        ("window_us", Json::Num(20.0)),
        ("seed", Json::count(7)),
    ]);
    let looked =
        client.request(&Json::obj([("cmd", Json::str("lookup")), ("spec", cell)])).expect("lookup");
    assert_ok(&looked);
    assert!(matches!(looked.get("cached"), Some(Json::Bool(true))), "{}", looked.render());
    shutdown(&socket);

    // A fresh server over the same cache dir serves the sweep from disk:
    // still zero simulations.
    let socket2 = start(&dir, "b");
    let mut client = Client::connect(&socket2).expect("connect");
    let restarted =
        client.request_streaming(&submit_request(&spec, true), |_| {}).expect("warm submit");
    assert_ok(&restarted);
    assert_eq!(field_u64(&restarted, "executed"), 0);
    assert_eq!(field_u64(&restarted, "hits"), 2);
    assert_eq!(restarted.get("report").expect("report").render(), reports[0]);
    assert_eq!(server_executed(&socket2), 0);
    shutdown(&socket2);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn async_submit_status_wait_lifecycle() {
    let dir = scratch("async");
    let socket = start(&dir, "a");
    let mut client = Client::connect(&socket).expect("connect");

    assert_ok(&client.request(&Json::obj([("cmd", Json::str("ping"))])).expect("ping"));

    let queued = client.request(&submit_request(&tiny_spec(), false)).expect("submit");
    assert_ok(&queued);
    let job = field_u64(&queued, "job");
    assert_eq!(field_u64(&queued, "cells"), 2);

    let done = client
        .request(&Json::obj([("cmd", Json::str("wait")), ("job", Json::count(job))]))
        .expect("wait");
    assert_ok(&done);
    assert_eq!(field_u64(&done, "cells"), 2);
    assert!(done.get("report").is_some());

    let status = client
        .request(&Json::obj([("cmd", Json::str("status")), ("job", Json::count(job))]))
        .expect("status");
    assert_ok(&status);
    assert_eq!(status.get("state"), Some(&Json::str("done")));
    assert_eq!(field_u64(&status, "done"), 2);

    // Unknown jobs and malformed requests error without killing the
    // connection.
    let missing = client
        .request(&Json::obj([("cmd", Json::str("status")), ("job", Json::count(999))]))
        .expect("missing status");
    assert!(matches!(missing.get("ok"), Some(Json::Bool(false))));
    let bad = client.request(&Json::obj([("cmd", Json::str("no-such"))])).expect("bad cmd");
    assert!(matches!(bad.get("ok"), Some(Json::Bool(false))));

    shutdown(&socket);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn progress_events_round_trip_the_wire_shape() {
    use campaignd::ProgressEvent;
    let e = ProgressEvent { job: 7, done: 3, cells: 18 };
    let j = e.to_json();
    assert_eq!(
        j.render(),
        r#"{"event":"progress","job":7,"done":3,"cells":18}"#,
        "wire shape is part of the protocol"
    );
    assert_eq!(ProgressEvent::from_json(&j), Some(e));
    assert!((e.fraction() - 3.0 / 18.0).abs() < 1e-12);
    // Non-progress lines (e.g. the final completion response) parse to None.
    let done = Json::obj([("ok", Json::Bool(true)), ("job", Json::count(7))]);
    assert_eq!(ProgressEvent::from_json(&done), None);
}
