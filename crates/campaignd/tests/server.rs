//! End-to-end exercises of the campaign server over a real unix socket:
//! single-flight dedup between concurrent clients, warm-cache restarts,
//! and the async submit/status/wait lifecycle.

use campaignd::{submit_request, Client, Server, ServerConfig};
use sim::spec::SweepSpec;
use sim_core::json::Json;
use std::path::PathBuf;

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("campaignd-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// Two unique cells, short window: fast enough to simulate for real.
fn tiny_spec() -> SweepSpec {
    let mut spec = SweepSpec::new("campaignd_smoke");
    spec.workloads = vec!["mcf_like".to_string()];
    spec.trackers = vec!["none".to_string(), "para".to_string()];
    spec.options.window_us = Some(20.0);
    spec.options.seed = Some(7);
    spec
}

fn start(dir: &std::path::Path, tag: &str) -> PathBuf {
    start_with(dir, tag, ServerConfig::default())
}

fn start_with(dir: &std::path::Path, tag: &str, mut cfg: ServerConfig) -> PathBuf {
    let socket = dir.join(format!("{tag}.sock"));
    cfg.socket = socket.clone();
    cfg.cache_dir = Some(dir.join("cache"));
    let server = Server::bind(cfg).expect("bind");
    std::thread::spawn(move || server.serve().expect("serve"));
    socket
}

fn field_u64(j: &Json, key: &str) -> u64 {
    match j.get(key) {
        Some(Json::Num(n)) => *n as u64,
        _ => panic!("missing numeric '{key}' in {}", j.render()),
    }
}

fn assert_ok(j: &Json) {
    assert!(matches!(j.get("ok"), Some(Json::Bool(true))), "not ok: {}", j.render());
}

fn server_executed(socket: &std::path::Path) -> u64 {
    let mut client = Client::connect(socket).expect("connect");
    let stats = client.request(&Json::obj([("cmd", Json::str("stats"))])).expect("stats");
    assert_ok(&stats);
    field_u64(&stats, "executed")
}

fn shutdown(socket: &std::path::Path) {
    let mut client = Client::connect(socket).expect("connect");
    assert_ok(&client.request(&Json::obj([("cmd", Json::str("shutdown"))])).expect("shutdown"));
}

#[test]
fn concurrent_identical_submissions_run_each_cell_once() {
    let dir = scratch("single-flight");
    let socket = start(&dir, "a");
    let spec = tiny_spec();

    // Two clients race the same two-cell sweep.
    let completions: Vec<Json> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let (socket, spec) = (socket.clone(), spec.clone());
                scope.spawn(move || {
                    let mut client = Client::connect(&socket).expect("connect");
                    client
                        .request_streaming(&submit_request(&spec, true), |_event| {})
                        .expect("submit")
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client thread")).collect()
    });
    for c in &completions {
        assert_ok(c);
        assert_eq!(field_u64(c, "cells"), 2);
    }
    // Byte-identical reports no matter which submission simulated what.
    let reports: Vec<String> =
        completions.iter().map(|c| c.get("report").expect("report").render()).collect();
    assert_eq!(reports[0], reports[1]);
    // Single-flight witness: 2 unique cells → exactly 2 simulations.
    assert_eq!(server_executed(&socket), 2);
    assert_eq!(field_u64(&completions[0], "executed") + field_u64(&completions[1], "executed"), 2);

    // A third submission is answered wholly from the in-memory table.
    let mut client = Client::connect(&socket).expect("connect");
    let warm = client.request_streaming(&submit_request(&spec, true), |_| {}).expect("resubmit");
    assert_ok(&warm);
    assert_eq!(field_u64(&warm, "executed"), 0);
    assert_eq!(field_u64(&warm, "shared"), 2);
    assert_eq!(warm.get("report").expect("report").render(), reports[0]);
    assert_eq!(server_executed(&socket), 2);

    // A cell lookup answers from cache without simulating.
    let cell = Json::obj([
        ("workload", Json::str("mcf_like")),
        ("tracker", Json::str("para")),
        ("window_us", Json::Num(20.0)),
        ("seed", Json::count(7)),
    ]);
    let looked =
        client.request(&Json::obj([("cmd", Json::str("lookup")), ("spec", cell)])).expect("lookup");
    assert_ok(&looked);
    assert!(matches!(looked.get("cached"), Some(Json::Bool(true))), "{}", looked.render());
    shutdown(&socket);

    // A fresh server over the same cache dir serves the sweep from disk:
    // still zero simulations.
    let socket2 = start(&dir, "b");
    let mut client = Client::connect(&socket2).expect("connect");
    let restarted =
        client.request_streaming(&submit_request(&spec, true), |_| {}).expect("warm submit");
    assert_ok(&restarted);
    assert_eq!(field_u64(&restarted, "executed"), 0);
    assert_eq!(field_u64(&restarted, "hits"), 2);
    assert_eq!(restarted.get("report").expect("report").render(), reports[0]);
    assert_eq!(server_executed(&socket2), 0);
    shutdown(&socket2);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn async_submit_status_wait_lifecycle() {
    let dir = scratch("async");
    let socket = start(&dir, "a");
    let mut client = Client::connect(&socket).expect("connect");

    assert_ok(&client.request(&Json::obj([("cmd", Json::str("ping"))])).expect("ping"));

    let queued = client.request(&submit_request(&tiny_spec(), false)).expect("submit");
    assert_ok(&queued);
    let job = field_u64(&queued, "job");
    assert_eq!(field_u64(&queued, "cells"), 2);

    let done = client
        .request(&Json::obj([("cmd", Json::str("wait")), ("job", Json::count(job))]))
        .expect("wait");
    assert_ok(&done);
    assert_eq!(field_u64(&done, "cells"), 2);
    assert!(done.get("report").is_some());

    let status = client
        .request(&Json::obj([("cmd", Json::str("status")), ("job", Json::count(job))]))
        .expect("status");
    assert_ok(&status);
    assert_eq!(status.get("state"), Some(&Json::str("done")));
    assert_eq!(field_u64(&status, "done"), 2);

    // Unknown jobs and malformed requests error without killing the
    // connection.
    let missing = client
        .request(&Json::obj([("cmd", Json::str("status")), ("job", Json::count(999))]))
        .expect("missing status");
    assert!(matches!(missing.get("ok"), Some(Json::Bool(false))));
    let bad = client.request(&Json::obj([("cmd", Json::str("no-such"))])).expect("bad cmd");
    assert!(matches!(bad.get("ok"), Some(Json::Bool(false))));

    shutdown(&socket);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn shutdown_drains_in_flight_jobs_before_exit() {
    let dir = scratch("drain");
    let socket = start_with(
        &dir,
        "a",
        ServerConfig {
            drain_timeout: Some(std::time::Duration::from_secs(60)),
            ..ServerConfig::default()
        },
    );
    let mut client = Client::connect(&socket).expect("connect");
    let queued = client.request(&submit_request(&tiny_spec(), false)).expect("submit");
    assert_ok(&queued);
    // Shutdown lands while the background job is (most likely) still
    // simulating; the drain must let it finish and commit to the cache.
    shutdown(&socket);
    for _ in 0..2000 {
        if !socket.exists() {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    assert!(!socket.exists(), "the server exits after draining");
    // A fresh server over the same cache dir proves nothing was lost:
    // the drained job's two cells answer from disk, zero simulations.
    let socket2 = start(&dir, "b");
    let mut client = Client::connect(&socket2).expect("connect");
    let warm = client.request_streaming(&submit_request(&tiny_spec(), true), |_| {}).expect("warm");
    assert_ok(&warm);
    assert_eq!(field_u64(&warm, "executed"), 0);
    assert_eq!(field_u64(&warm, "hits"), 2);
    shutdown(&socket2);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn disconnected_client_does_not_wedge_the_job() {
    use sim_core::fault::FaultPlan;
    let dir = scratch("disconnect");
    let socket = start_with(
        &dir,
        "a",
        ServerConfig {
            faults: Some(FaultPlan::new(17).disconnect_client_nth(1).arm()),
            ..ServerConfig::default()
        },
    );
    // The armed server severs this client at its first progress event;
    // the submit surfaces as an io error, never a completion.
    let mut client = Client::connect(&socket).expect("connect");
    let severed = client.request_streaming(&submit_request(&tiny_spec(), true), |_| {});
    assert!(severed.is_err(), "the injected disconnect must surface to the client");
    // The job keeps running server-side. A reconnecting client waits on
    // it (the severed submit was job 1) and gets the full report.
    let mut client = Client::connect(&socket).expect("reconnect");
    let done = loop {
        let r = client
            .request(&Json::obj([("cmd", Json::str("wait")), ("job", Json::count(1))]))
            .expect("wait");
        if matches!(r.get("ok"), Some(Json::Bool(true))) {
            break r;
        }
        std::thread::sleep(std::time::Duration::from_millis(20));
    };
    assert_eq!(field_u64(&done, "cells"), 2);
    let report = done.get("report").expect("report").render();
    // And a clean resubmit shares those exact results byte-for-byte.
    let warm = client.request_streaming(&submit_request(&tiny_spec(), true), |_| {}).expect("warm");
    assert_ok(&warm);
    assert_eq!(field_u64(&warm, "executed"), 0);
    assert_eq!(warm.get("report").expect("report").render(), report);
    shutdown(&socket);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn restarted_server_resumes_only_the_unfinished_remainder() {
    use sim_core::fault::FaultPlan;
    // Baseline: an uninterrupted run in its own cache dir.
    let clean_dir = scratch("resume-clean");
    let clean_socket = start(&clean_dir, "c");
    let mut client = Client::connect(&clean_socket).expect("connect");
    let clean =
        client.request_streaming(&submit_request(&tiny_spec(), true), |_| {}).expect("clean");
    assert_ok(&clean);
    let clean_report = clean.get("report").expect("report").render();
    shutdown(&clean_socket);

    // Interrupted run: cell index 1 panics on every attempt, so the sweep
    // ends with one journaled cell and no `end` record — the same durable
    // state a kill -9 after cell 0 would leave.
    let dir = scratch("resume");
    let socket = start_with(
        &dir,
        "a",
        ServerConfig {
            faults: Some(FaultPlan::new(23).halt_jobs_from(1).arm()),
            ..ServerConfig::default()
        },
    );
    let mut client = Client::connect(&socket).expect("connect");
    let hurt = client.request_streaming(&submit_request(&tiny_spec(), true), |_| {}).expect("hurt");
    assert_ok(&hurt);
    assert_eq!(field_u64(&hurt, "executed"), 2, "both cells were attempted");
    let report = hurt.get("report").expect("report");
    let failures = match report.get("failures") {
        Some(Json::Arr(items)) => items.clone(),
        other => panic!("expected a failures array, got {other:?}"),
    };
    assert_eq!(failures.len(), 1, "exactly the faulted cell is quarantined");
    assert!(
        matches!(failures[0].get("cell"), Some(Json::Str(s)) if s.contains("mcf_like")),
        "quarantine carries the cell descriptor: {}",
        failures[0].render()
    );
    shutdown(&socket);
    for _ in 0..2000 {
        if !socket.exists() {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    }

    // Restart (fault-free) with resume: the journaled sweep comes back as
    // job 1, re-executes only the unfinished cell, and the final report
    // is byte-identical to the uninterrupted baseline.
    let socket2 = start_with(&dir, "b", ServerConfig { resume: true, ..ServerConfig::default() });
    let mut client = Client::connect(&socket2).expect("connect");
    let resumed = client
        .request(&Json::obj([("cmd", Json::str("wait")), ("job", Json::count(1))]))
        .expect("wait resumed");
    assert_ok(&resumed);
    assert_eq!(field_u64(&resumed, "executed"), 1, "only the unfinished cell re-executes");
    assert_eq!(field_u64(&resumed, "hits"), 1);
    assert_eq!(field_u64(&resumed, "resumed"), 1);
    assert_eq!(resumed.get("report").expect("report").render(), clean_report);
    let stats = client.request(&Json::obj([("cmd", Json::str("stats"))])).expect("stats");
    assert_eq!(field_u64(&stats, "resumed_sweeps"), 1);
    shutdown(&socket2);
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&clean_dir);
}

#[test]
fn progress_events_round_trip_the_wire_shape() {
    use campaignd::ProgressEvent;
    let e = ProgressEvent { job: 7, done: 3, cells: 18 };
    let j = e.to_json();
    assert_eq!(
        j.render(),
        r#"{"event":"progress","job":7,"done":3,"cells":18}"#,
        "wire shape is part of the protocol"
    );
    assert_eq!(ProgressEvent::from_json(&j), Some(e));
    assert!((e.fraction() - 3.0 / 18.0).abs() < 1e-12);
    // Non-progress lines (e.g. the final completion response) parse to None.
    let done = Json::obj([("ok", Json::Bool(true)), ("job", Json::count(7))]);
    assert_eq!(ProgressEvent::from_json(&done), None);
}
