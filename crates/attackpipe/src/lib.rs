//! # attackpipe — the end-to-end attacker pipeline
//!
//! Simulator studies (this reproduction included, before this crate)
//! grant the attacker a free superpower: perfect knowledge of the DRAM
//! address mapping, so every hammer lands on true same-bank adjacent
//! rows. Real attackers start from nothing but a virtual address space
//! and a timer. This crate closes that gap with a three-stage pipeline
//! that makes *attacker knowledge* an experimental axis
//! ([`sim::AttackerKnowledge`]):
//!
//! 1. **Recon** ([`recon`]) — a Spoiler/DRAMA-style timing campaign:
//!    probe pairs of physical addresses through the real simulated
//!    memory system and classify row-buffer *conflicts* (slow) against
//!    row hits and bank parallelism (fast), using nothing a userspace
//!    attacker could not observe (issue→completion latency via
//!    [`sim_core::telemetry::LatencyProbe`]). The result is an
//!    [`recon::InferredMap`]: a believed row stride, per-pair bank
//!    co-location verdicts with confidence, and an estimated mitigation
//!    cadence.
//! 2. **Hammer** ([`hammer`]) — compiles the (possibly wrong) belief
//!    into a double-sided aggressor pattern driven through the
//!    [`attacklab::pattern::PatternGen`] engine; inference errors blunt
//!    the attack exactly as they would on hardware.
//! 3. **Victim** ([`victim`]) — places victim rows with per-row
//!    HammerCount thresholds (real DIMMs have weak cells) and
//!    adjudicates bit flips against the ground-truth oracle's peak
//!    disturbance ([`analysis::OracleProbe::peak_damage_at`]), yielding
//!    a flips-vs-slowdown verdict per tracker.
//!
//! The [`pipeline`] module drives all three stages per experiment cell,
//! caches verdicts content-addressed (a warm re-run simulates nothing),
//! and powers both the `spec_run` `[attacker]` section and the
//! `redteam --attacker` campaign axis.
//!
//! # Quickstart
//!
//! ```no_run
//! use sim::{AttackerConfig, AttackerKnowledge, Experiment};
//!
//! let e = Experiment::quick("libquantum_like")
//!     .tracker("para")
//!     .attacker(AttackerConfig::new(AttackerKnowledge::TimingRecon));
//! let reference = attackpipe::pipeline::reference_for(&e);
//! let verdict = attackpipe::pipeline::run_cell(&e, &reference);
//! println!(
//!     "{}: {} flips at {:.3} of baseline (map accuracy {:?})",
//!     verdict.tracker, verdict.flips, verdict.normalized_performance,
//!     verdict.recon_accuracy
//! );
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod hammer;
pub mod pipeline;
pub mod recon;
pub mod victim;

pub use hammer::{HammerPlan, PhysRoundRobin};
pub use pipeline::{
    redteam_main, reference_for, run_attacker_sweep, run_cell, AttackerSweepReport, PipelineVerdict,
};
pub use recon::{Belief, InferredMap, KnowledgeModel, PairVerdict};
pub use victim::{FlipVerdict, VictimOrchestrator, VictimPlacement};
