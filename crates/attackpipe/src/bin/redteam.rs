//! The `redteam` campaign binary: the attacklab adversarial campaign,
//! plus the `--attacker` knowledge axis run by the attackpipe pipeline.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(attackpipe::redteam_main(&args));
}
