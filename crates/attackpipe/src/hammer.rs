//! Stage 2: compiling a mapping belief into a hammer pattern.
//!
//! The hammer stage never sees the geometry. It turns a
//! [`Belief`] — possibly wrong, possibly empty —
//! into a concrete aggressor set and drives it through the
//! [`attacklab::pattern`] engine, so mapping errors blunt the attack
//! exactly as they would on hardware:
//!
//! * a **correct** row stride yields a classic double-sided pattern —
//!   aggressors at every second believed-adjacent row, victims between,
//! * a **wrong** stride scatters the "aggressors" across unrelated banks
//!   or columns; activation pressure never concentrates,
//! * **no** stride (blind, or inconclusive recon) falls back to random
//!   line addresses — near-zero per-row pressure by construction.

use attacklab::pattern::{PatternGen, PatternTrace};
use cpu::TraceEntry;
use sim::{AttackerConfig, CustomAttack};
use sim_core::addr::PhysAddr;
use sim_core::rng::Xoshiro256;

use crate::recon::Belief;

/// Aggressor pairs on each side of the double-sided ladder: with
/// [`HammerPlan::compile`]'s layout, `PAIRS + 1` aggressors sandwich
/// `PAIRS` victim rows.
pub const PAIRS: usize = 6;

/// Addresses the blind fallback spreads its accesses over.
const BLIND_ADDRS: usize = 16;

/// Round-robins a fixed physical-address set — the one primitive the
/// attacker can drive without knowing what the addresses decode to.
/// (The [`attacklab`] primitives all speak [`sim_core::addr::DramAddr`];
/// an attacker without the mapping cannot.)
#[derive(Debug, Clone)]
pub struct PhysRoundRobin {
    addrs: Vec<PhysAddr>,
    bubbles: u32,
    next: usize,
}

impl PhysRoundRobin {
    /// Cycles the given addresses with `bubbles` compute instructions
    /// between accesses.
    ///
    /// # Panics
    ///
    /// Panics if `addrs` is empty.
    pub fn new(addrs: Vec<PhysAddr>, bubbles: u32) -> Self {
        assert!(!addrs.is_empty(), "hammer address set must be non-empty");
        Self { addrs, bubbles, next: 0 }
    }
}

impl PatternGen for PhysRoundRobin {
    fn next_access(&mut self) -> TraceEntry {
        let addr = self.addrs[self.next];
        self.next = (self.next + 1) % self.addrs.len();
        TraceEntry { bubbles: self.bubbles, addr, is_write: false }
    }

    fn describe(&self) -> String {
        format!("phys-rr({}addrs b{})", self.addrs.len(), self.bubbles)
    }
}

/// A compiled hammer: the aggressor addresses the attacker will cycle.
#[derive(Debug, Clone)]
pub struct HammerPlan {
    /// Aggressor physical addresses, in round-robin order.
    pub aggressors: Vec<PhysAddr>,
    /// Display name (`attackpipe:<level>`), used as the attack label.
    pub name: String,
    /// The believed row stride the plan was compiled from (`None` for
    /// the blind fallback).
    pub believed_stride: Option<u64>,
}

impl HammerPlan {
    /// Compiles a belief into an aggressor set anchored at `region_base`
    /// (the victim region's first physical address — the attacker knows
    /// *where* the victim lives, the belief decides *how* to reach its
    /// neighbours).
    ///
    /// With a believed stride `S`: a double-sided ladder of `PAIRS + 1`
    /// aggressors at `region_base + 2iS`, leaving the odd multiples as
    /// victims. Without one: `BLIND_ADDRS` (16) uniformly random line
    /// addresses below `capacity`.
    pub fn compile(
        belief: &Belief,
        cfg: &AttackerConfig,
        capacity: u64,
        region_base: PhysAddr,
        level: &str,
    ) -> Self {
        let name = format!("attackpipe:{level}");
        match belief.row_stride {
            Some(s) => {
                let aggressors =
                    (0..=PAIRS as u64).map(|i| PhysAddr(region_base.0 + 2 * i * s)).collect();
                Self { aggressors, name, believed_stride: Some(s) }
            }
            None => {
                let mut rng = Xoshiro256::seed_from(cfg.seed ^ 0xB11D);
                let aggressors = (0..BLIND_ADDRS)
                    .map(|_| PhysAddr(rng.next_u64() & (capacity - 1) & !63))
                    .collect();
                Self { aggressors, name, believed_stride: None }
            }
        }
    }

    /// Wraps the plan as the experiment's custom attacker: an LLC-
    /// bypassing round-robin over the aggressor set, rebuilt identically
    /// on every system construction.
    pub fn custom_attack(&self) -> CustomAttack {
        let addrs = self.aggressors.clone();
        CustomAttack::new(&self.name, true, move |_, _| {
            Box::new(PatternTrace(Box::new(PhysRoundRobin::new(addrs.clone(), 0))))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim::AttackerKnowledge;

    fn cfg() -> AttackerConfig {
        AttackerConfig::new(AttackerKnowledge::Blind)
    }

    #[test]
    fn stride_belief_compiles_a_double_sided_ladder() {
        let belief = Belief { row_stride: Some(1 << 20), inferred: None };
        let plan =
            HammerPlan::compile(&belief, &cfg(), 1 << 36, PhysAddr(0x123_0000), "omniscient");
        assert_eq!(plan.aggressors.len(), PAIRS + 1);
        assert_eq!(plan.name, "attackpipe:omniscient");
        assert_eq!(plan.believed_stride, Some(1 << 20));
        for (i, a) in plan.aggressors.iter().enumerate() {
            assert_eq!(a.0, 0x123_0000 + 2 * i as u64 * (1 << 20), "even multiples only");
        }
    }

    #[test]
    fn empty_belief_compiles_the_blind_fallback() {
        let plan = HammerPlan::compile(&Belief::default(), &cfg(), 1 << 36, PhysAddr(0), "blind");
        let again = HammerPlan::compile(&Belief::default(), &cfg(), 1 << 36, PhysAddr(0), "blind");
        assert_eq!(plan.aggressors.len(), BLIND_ADDRS);
        assert_eq!(plan.aggressors, again.aggressors, "seed-deterministic");
        assert!(plan.believed_stride.is_none());
        assert!(plan.aggressors.iter().all(|a| a.0 < (1 << 36) && a.0 % 64 == 0));
    }

    #[test]
    fn round_robin_cycles_and_describes() {
        let mut p = PhysRoundRobin::new(vec![PhysAddr(64), PhysAddr(128)], 3);
        let seq: Vec<u64> = (0..5).map(|_| p.next_access().addr.0).collect();
        assert_eq!(seq, vec![64, 128, 64, 128, 64]);
        assert_eq!(p.next_access().bubbles, 3);
        assert_eq!(p.describe(), "phys-rr(2addrs b3)");
    }

    #[test]
    fn plan_builds_a_replayable_custom_attack() {
        let belief = Belief { row_stride: Some(1 << 20), inferred: None };
        let plan = HammerPlan::compile(&belief, &cfg(), 1 << 36, PhysAddr(1 << 21), "x");
        let ca = plan.custom_attack();
        assert_eq!(ca.name(), "attackpipe:x");
        assert!(ca.bypasses_llc());
        let geom = sim_core::addr::Geometry::paper_baseline();
        let mut t1 = ca.build(geom, 1);
        let mut t2 = ca.build(geom, 2);
        for _ in 0..20 {
            assert_eq!(t1.next_entry().addr, t2.next_entry().addr, "seed-independent replay");
        }
    }
}
