//! Stage 3: victim placement and bit-flip adjudication.
//!
//! The orchestrator plays the *evaluation* side of the pipeline: it
//! decides where the victim data lives (a contiguous run of rows in one
//! randomly chosen bank), assigns each victim row its own HammerCount
//! threshold — real DIMMs have weak cells that flip well below the
//! configured N_RH, which is exactly why trackers keep a guard band —
//! and, after the hammer run, adjudicates flips against the ground-truth
//! oracle's **peak** per-row disturbance (peaks survive mitigations: a
//! victim pushed to 400 and then refreshed was still exposed to 400).
//!
//! The placement is deliberately shared across knowledge levels of one
//! cell: the threat model says the attacker knows *where* the victim
//! lives (the region base is handed to the hammer compiler), while what
//! distinguishes omniscient / timing-recon / blind is whether their
//! believed stride actually lands aggressors around it.

use analysis::OracleProbe;
use attacklab::pattern::RESERVED_TOP_ROWS;
use sim_core::addr::{DramAddr, Geometry, PhysAddr};
use sim_core::rng::Xoshiro256;

use crate::hammer::PAIRS;

/// Per-row HC threshold spread: thresholds are drawn uniformly from
/// `N_RH x [LOW, LOW + SPAN)` — some cells flip at barely half the rated
/// threshold, some need half again more.
const THRESHOLD_LOW: f64 = 0.55;
const THRESHOLD_SPAN: f64 = 0.90;

/// Where the victims live and how weak each one is.
#[derive(Debug, Clone)]
pub struct VictimPlacement {
    /// Physical address of the region's first (even, aggressor) row —
    /// the anchor handed to the hammer compiler.
    pub region_base: PhysAddr,
    /// Victim rows (the odd rows of the region) with their individual
    /// HC thresholds.
    pub victims: Vec<(DramAddr, u32)>,
}

/// The flip count the run actually produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlipVerdict {
    /// Victim rows whose peak disturbance reached their HC threshold.
    pub flips: u64,
    /// Victim rows placed.
    pub victims: u64,
    /// Highest peak disturbance observed on any victim row — a robust
    /// pressure metric even when no threshold was crossed.
    pub max_victim_peak: u32,
}

/// Places victims and adjudicates flips for one experiment cell.
#[derive(Debug, Clone)]
pub struct VictimOrchestrator {
    geom: Geometry,
    nrh: u32,
    seed: u64,
}

impl VictimOrchestrator {
    /// An orchestrator for the given machine and rated threshold. The
    /// seed drives placement and per-row thresholds, so one cell's
    /// knowledge levels (same seed) share identical victims.
    pub fn new(geom: Geometry, nrh: u32, seed: u64) -> Self {
        Self { geom, nrh, seed }
    }

    /// Picks the victim region: a random bank, an even base row with
    /// room for the [`PAIRS`]-victim ladder below the reserved rows, and
    /// a weak-cell threshold per victim.
    pub fn place(&self) -> VictimPlacement {
        let mut rng = Xoshiro256::seed_from(self.seed ^ 0x71C7_1235);
        let g = &self.geom;
        let channel = rng.gen_range(g.channels as u64) as u8;
        let rank = rng.gen_range(g.ranks as u64) as u8;
        let bank_group = rng.gen_range(g.bank_groups as u64) as u8;
        let bank = rng.gen_range(g.banks_per_group as u64) as u8;
        let span = 2 * (PAIRS as u32 + 1);
        let max_base = g.rows_per_bank - RESERVED_TOP_ROWS - span;
        let base_row = (rng.gen_range(max_base as u64 / 2) * 2) as u32;
        let anchor = DramAddr::new(channel, rank, bank_group, bank, base_row, 0);
        let victims = (0..PAIRS as u32)
            .map(|i| {
                let hc = self.nrh as f64 * (THRESHOLD_LOW + THRESHOLD_SPAN * rng.gen_f64());
                (anchor.with_row(base_row + 2 * i + 1), (hc as u32).max(1))
            })
            .collect();
        VictimPlacement { region_base: g.encode(&anchor), victims }
    }

    /// Scores a finished hammer run: each victim flips iff its peak
    /// disturbance reached its own threshold.
    pub fn adjudicate(&self, placement: &VictimPlacement, oracle: &OracleProbe) -> FlipVerdict {
        let mut flips = 0;
        let mut max_victim_peak = 0;
        for (addr, hc) in &placement.victims {
            let peak = oracle.peak_damage_at(addr);
            max_victim_peak = max_victim_peak.max(peak);
            if peak >= *hc {
                flips += 1;
            }
        }
        FlipVerdict { flips, victims: placement.victims.len() as u64, max_victim_peak }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::events::MemEvent;
    use sim_core::telemetry::Probe;

    fn orch() -> VictimOrchestrator {
        VictimOrchestrator::new(Geometry::paper_baseline(), 500, 0xA77AC4)
    }

    #[test]
    fn placement_is_a_one_bank_odd_row_ladder() {
        let p = orch().place();
        assert_eq!(p.victims.len(), PAIRS);
        let g = Geometry::paper_baseline();
        let anchor = g.decode(p.region_base);
        assert_eq!(anchor.row % 2, 0, "anchor row is even (an aggressor row)");
        for (i, (v, hc)) in p.victims.iter().enumerate() {
            assert_eq!(
                (v.channel, v.rank, v.bank_group, v.bank),
                (anchor.channel, anchor.rank, anchor.bank_group, anchor.bank),
                "all victims share the anchor's bank"
            );
            assert_eq!(v.row, anchor.row + 2 * i as u32 + 1, "victims on the odd rows");
            assert!(v.row < g.rows_per_bank - RESERVED_TOP_ROWS);
            let (lo, hi) = (500.0 * THRESHOLD_LOW, 500.0 * (THRESHOLD_LOW + THRESHOLD_SPAN));
            assert!((*hc as f64) >= lo - 1.0 && (*hc as f64) < hi, "threshold {hc}");
        }
    }

    #[test]
    fn placement_is_seed_deterministic_and_seed_sensitive() {
        let a = orch().place();
        let b = orch().place();
        assert_eq!(a.region_base, b.region_base);
        assert_eq!(a.victims, b.victims);
        let c = VictimOrchestrator::new(Geometry::paper_baseline(), 500, 1).place();
        assert_ne!(a.region_base, c.region_base, "different seed, different region");
    }

    #[test]
    fn adjudication_flips_only_past_each_rows_threshold() {
        let o = orch();
        let p = o.place();
        let g = Geometry::paper_baseline();
        // Hammer the region's first aggressor row only: with blast radius
        // 1 it neighbours exactly one victim (the row below it is outside
        // the ladder), so the flip count isolates that victim's threshold.
        let (v0, _) = p.victims[0];
        let hammer = |count: u32| {
            let mut probe = OracleProbe::new(100_000, 1, g);
            for _ in 0..count {
                probe.on_event(
                    v0.channel,
                    &MemEvent::Activate { addr: v0.with_row(v0.row - 1), cycle: 0 },
                );
            }
            o.adjudicate(&p, &probe)
        };
        // 1000 activations clear any threshold (all are below 725).
        let verdict = hammer(1000);
        assert_eq!(verdict.victims, PAIRS as u64);
        assert_eq!(verdict.max_victim_peak, 1000);
        assert_eq!(verdict.flips, 1, "only the hammered victim flips");
        // 100 stays below every threshold (all are at least 275): pressure
        // registers in the peak but crosses no per-row threshold.
        let verdict = hammer(100);
        assert_eq!(verdict, FlipVerdict { flips: 0, victims: PAIRS as u64, max_victim_peak: 100 });
        let idle = o.adjudicate(&p, &OracleProbe::new(100_000, 1, g));
        assert_eq!(idle, FlipVerdict { flips: 0, victims: PAIRS as u64, max_victim_peak: 0 });
    }
}
