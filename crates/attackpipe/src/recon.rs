//! Stage 1: timing-side-channel reconnaissance.
//!
//! The attacker knows nothing about the DRAM address mapping except the
//! module capacity and the 64-byte line size — both printed on the box.
//! Everything else is inferred from **access latency** alone, the
//! Spoiler/DRAMA playbook adapted to the simulator's trace interface:
//!
//! * **Calibration** — repeated reads of one address establish the
//!   row-hit latency floor.
//! * **Stride discovery** — for each candidate bit `j`, alternate reads
//!   of `X` and `X + 2^j`. Bits below the row field toggle the column,
//!   bank, bank-group, rank, or channel: both rows stay open (or live in
//!   different banks) and reads come back fast. Bits in the row field
//!   keep the *same bank* but select a *different row*: every alternation
//!   is a row-buffer conflict (PRE + ACT + CAS) and reads come back slow.
//!   The smallest slow bit is the row-field shift, hence the physical
//!   stride between same-bank adjacent rows.
//! * **Verification** — a pool of believed same-bank adjacent pairs
//!   (`B + 2kS`, `B + (2k+1)S`) plus sub-row-stride control pairs, each
//!   probed and classified with a per-pair confidence.
//!
//! Latencies are observed through a [`LatencyProbe`] on the attacker's
//! own [`SourceId`] — the inject-to-completion interval a userspace
//! attacker times with `rdtscp`; nothing reads simulator internals. The
//! recon runs execute against the *real* system (benign cores and the
//! tracker under test included), so queueing noise and mitigation stalls
//! are part of the measurement; mitigation stalls are in fact signal,
//! and their spacing yields the estimated mitigation cadence.

use cpu::{TraceEntry, TraceSource};
use sim::{AttackerConfig, AttackerKnowledge, CustomAttack, Experiment};
use sim_core::addr::{DramAddr, Geometry, PhysAddr};
use sim_core::req::SourceId;
use sim_core::rng::Xoshiro256;
use sim_core::telemetry::{LatencyProbe, LatencySample, Probe};
use std::collections::{HashMap, HashSet};

/// Accesses spent calibrating the row-hit latency floor.
const CALIB_SAMPLES: usize = 16;
/// Alternating accesses per stride-discovery bit (preferred; shrinks
/// under tight budgets, never below [`MIN_PAIR_SAMPLES`]).
const STRIDE_SAMPLES: usize = 12;
/// Alternating accesses per verification pair.
const PAIR_SAMPLES: usize = 8;
/// Floor on per-phase samples under tight budgets.
const MIN_PAIR_SAMPLES: usize = 4;
/// Cap on verification pairs per class (candidates / controls).
const MAX_VERIFY_PAIRS: usize = 48;
/// Compute bubbles before every probe access: spaces probes far enough
/// apart that each one's latency is measured in isolation (the ROB never
/// holds two probe loads at once).
const PROBE_BUBBLES: u32 = 400;
/// Minimum separation (bus cycles) between the fast and slow latency
/// clusters for the classification to count as conclusive.
const MIN_CLUSTER_GAP: f64 = 6.0;

// ---------------------------------------------------------------- beliefs

/// What the attacker believes about the machine after stage 1.
#[derive(Debug, Clone, Default)]
pub struct Belief {
    /// Believed physical-address stride between same-bank adjacent rows
    /// (`None`: no usable belief — hammer falls back to blind guessing).
    pub row_stride: Option<u64>,
    /// The recon evidence backing the belief (timing-recon only).
    pub inferred: Option<InferredMap>,
}

/// One probed address pair and its classification.
#[derive(Debug, Clone, Copy)]
pub struct PairVerdict {
    /// First address of the pair.
    pub a: PhysAddr,
    /// Second address of the pair.
    pub b: PhysAddr,
    /// Classified as same-bank different-row (a row-buffer-conflict
    /// pair — the kind double-sided hammering needs).
    pub same_bank: bool,
    /// Distance of the pair's median latency from the decision
    /// threshold, normalized to the cluster separation and clamped to
    /// `[0, 1]`.
    pub confidence: f64,
}

/// Everything stage 1 inferred, with the ground-truth scoring hooks the
/// *reporting* side uses (the attacker itself never calls them).
#[derive(Debug, Clone, Default)]
pub struct InferredMap {
    /// Inferred row-field shift: the believed stride is `1 << row_shift`.
    pub row_shift: Option<u32>,
    /// Per-pair verdicts from the verification phase.
    pub pairs: Vec<PairVerdict>,
    /// Estimated mitigation cadence (bus cycles between latency spikes),
    /// when enough spikes were observed.
    pub cadence_cycles: Option<u64>,
    /// Probe accesses actually scheduled (never exceeds the budget).
    pub probes_spent: u64,
}

impl InferredMap {
    /// The believed same-bank adjacent-row stride.
    pub fn row_stride(&self) -> Option<u64> {
        self.row_shift.map(|s| 1u64 << s)
    }

    /// Fraction of verification pairs classified correctly against the
    /// ground-truth decode (`None` when no pairs were probed). Reporting
    /// only: this is the `recon_accuracy` column.
    pub fn accuracy(&self, geom: &Geometry) -> Option<f64> {
        if self.pairs.is_empty() {
            return None;
        }
        let correct =
            self.pairs.iter().filter(|p| p.same_bank == same_bank_conflict(geom, p.a, p.b)).count();
        Some(correct as f64 / self.pairs.len() as f64)
    }

    /// Of the pairs that truly are same-bank different-row, the fraction
    /// the attacker recognized (`None` when no such pair was probed).
    pub fn same_bank_recall(&self, geom: &Geometry) -> Option<f64> {
        let truly: Vec<&PairVerdict> =
            self.pairs.iter().filter(|p| same_bank_conflict(geom, p.a, p.b)).collect();
        if truly.is_empty() {
            return None;
        }
        Some(truly.iter().filter(|p| p.same_bank).count() as f64 / truly.len() as f64)
    }
}

/// Ground truth: do the two addresses hit the same bank on different
/// rows (the row-buffer-conflict relation the probes classify)?
pub fn same_bank_conflict(geom: &Geometry, a: PhysAddr, b: PhysAddr) -> bool {
    let da = geom.decode(a);
    let db = geom.decode(b);
    da.channel == db.channel
        && da.rank == db.rank
        && da.bank_group == db.bank_group
        && da.bank == db.bank
        && da.row != db.row
}

/// How a knowledge level turns (or refuses to turn) observation into a
/// mapping belief. The trait is the recon stage's seam: `Omniscient`
/// reads the geometry (the classic simulator idealism), `TimingRecon`
/// runs the probe campaign, `Blind` knows nothing.
pub trait KnowledgeModel {
    /// Canonical level name.
    fn name(&self) -> &'static str;
    /// Acquires the belief, possibly by running recon simulations
    /// against the experiment's machine.
    fn acquire(&mut self, base: &Experiment, cfg: &AttackerConfig) -> Belief;
}

/// Full mapping knowledge (the pre-attackpipe default).
#[derive(Debug, Default)]
pub struct Omniscient;

impl KnowledgeModel for Omniscient {
    fn name(&self) -> &'static str {
        AttackerKnowledge::Omniscient.key()
    }

    fn acquire(&mut self, base: &Experiment, _cfg: &AttackerConfig) -> Belief {
        // The one model allowed to consult the geometry directly: the
        // true same-bank adjacent-row stride is the encoding of row 1.
        let stride = base.cfg.geometry.encode(&DramAddr::new(0, 0, 0, 0, 1, 0)).0;
        Belief { row_stride: Some(stride), inferred: None }
    }
}

/// No mapping knowledge at all.
#[derive(Debug, Default)]
pub struct Blind;

impl KnowledgeModel for Blind {
    fn name(&self) -> &'static str {
        AttackerKnowledge::Blind.key()
    }

    fn acquire(&mut self, _base: &Experiment, _cfg: &AttackerConfig) -> Belief {
        Belief::default()
    }
}

/// Knowledge inferred from access latencies (runs the probe campaign).
#[derive(Debug, Default)]
pub struct TimingRecon {
    /// The evidence from the last [`KnowledgeModel::acquire`] call.
    pub map: Option<InferredMap>,
}

impl KnowledgeModel for TimingRecon {
    fn name(&self) -> &'static str {
        AttackerKnowledge::TimingRecon.key()
    }

    fn acquire(&mut self, base: &Experiment, cfg: &AttackerConfig) -> Belief {
        let map = infer_map(base, cfg);
        let belief = Belief { row_stride: map.row_stride(), inferred: Some(map.clone()) };
        self.map = Some(map);
        belief
    }
}

/// The model implementing a configured knowledge level.
pub fn model_for(k: AttackerKnowledge) -> Box<dyn KnowledgeModel> {
    match k {
        AttackerKnowledge::Omniscient => Box::new(Omniscient),
        AttackerKnowledge::TimingRecon => Box::new(TimingRecon::default()),
        AttackerKnowledge::Blind => Box::new(Blind),
    }
}

// ---------------------------------------------------------------- probing

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PhaseKind {
    /// Repeated reads of one address: the hit-latency floor.
    Calib,
    /// Alternating pair differing in bit `j`.
    Stride(u32),
    /// Believed same-bank adjacent-row pair.
    Verify,
    /// Sub-row-stride control pair.
    Control,
}

#[derive(Debug, Clone, Copy)]
struct Phase {
    kind: PhaseKind,
    a: PhysAddr,
    b: PhysAddr,
    samples: usize,
}

/// Draws a fresh line-aligned address, distinct from every address used
/// so far, with the given bit cleared.
fn fresh(rng: &mut Xoshiro256, used: &mut HashSet<u64>, capacity: u64, clear: u64) -> u64 {
    loop {
        let a = rng.next_u64() & (capacity - 1) & !63 & !clear;
        if used.insert(a) && (clear == 0 || used.insert(a | clear)) {
            return a;
        }
    }
}

/// The probe trace: the precomputed schedule, then idle filler (one
/// far-away read per 50K instructions, like the reference machine's idle
/// core) until the window ends.
struct ScheduleTrace {
    entries: Vec<TraceEntry>,
    pos: usize,
    idle: PhysAddr,
}

impl TraceSource for ScheduleTrace {
    fn next_entry(&mut self) -> TraceEntry {
        match self.entries.get(self.pos) {
            Some(e) => {
                self.pos += 1;
                *e
            }
            None => TraceEntry { bubbles: 50_000, addr: self.idle, is_write: false },
        }
    }
}

fn schedule(phases: &[Phase]) -> Vec<TraceEntry> {
    let mut entries = Vec::new();
    for p in phases {
        for i in 0..p.samples {
            let addr = if p.kind == PhaseKind::Calib || i % 2 == 0 { p.a } else { p.b };
            entries.push(TraceEntry { bubbles: PROBE_BUBBLES, addr, is_write: false });
        }
    }
    entries
}

/// Runs one probe schedule on the experiment's machine (benign cores and
/// tracker included) and returns the attacker-visible latency samples.
fn probe_run(base: &Experiment, entries: Vec<TraceEntry>, idle: PhysAddr) -> Vec<LatencySample> {
    let mut e = base.clone();
    // Probes only; no recorders, no oracle — the recon run's outputs are
    // the latencies, nothing else.
    e.telemetry = Default::default();
    // Window sized so the schedule certainly completes: every probe costs
    // ~100 bus cycles of bubbles plus DRAM latency; 4x margin plus a tail.
    e.cfg.window_cycles = entries.len() as u64 * 800 + 50_000;
    e.custom_attack = Some(CustomAttack::new("attackpipe-recon", true, move |_, _| {
        Box::new(ScheduleTrace { entries: entries.clone(), pos: 0, idle })
    }));
    let source = SourceId(e.cfg.cpu.cores - 1);
    let mut sys = e.build_system(false);
    sys.attach_probe(Box::new(LatencyProbe::new(source)));
    let _ = sys.run_engine(e.engine);
    let mut probes = sys.take_probes();
    take_probe::<LatencyProbe>(&mut probes).map(LatencyProbe::into_samples).unwrap_or_default()
}

/// Pulls the first probe of concrete type `T` out of a finished run's
/// probe list (mirror of the experiment runner's private helper).
pub(crate) fn take_probe<T: Probe>(probes: &mut Vec<Box<dyn Probe>>) -> Option<T> {
    let idx = probes.iter().position(|p| p.as_any().is::<T>())?;
    let any: Box<dyn std::any::Any> = probes.remove(idx).into_any();
    any.downcast::<T>().ok().map(|b| *b)
}

// ------------------------------------------------------------- statistics

fn median(xs: &mut [f64]) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    xs.sort_by(f64::total_cmp);
    Some(xs[xs.len() / 2])
}

/// Per-phase median latency, warmup dropped: the first access of each
/// phase (cold row buffer) is not representative of the steady state the
/// classification relies on.
fn phase_medians(phases: &[Phase], samples: &[LatencySample]) -> Vec<Option<f64>> {
    let mut of_addr: HashMap<u64, usize> = HashMap::new();
    for (i, p) in phases.iter().enumerate() {
        of_addr.insert(p.a.0, i);
        of_addr.insert(p.b.0, i);
    }
    let mut lat: Vec<Vec<f64>> = vec![Vec::new(); phases.len()];
    for s in samples {
        if let Some(&i) = of_addr.get(&s.phys.0) {
            lat[i].push(s.latency() as f64);
        }
    }
    lat.iter_mut()
        .map(|xs| {
            let warm = xs.len().min(2);
            median(&mut xs[warm..])
        })
        .collect()
}

#[derive(Debug, Clone, Copy)]
struct Classes {
    low: f64,
    high: f64,
    threshold: f64,
}

impl Classes {
    fn confidence(&self, med: f64) -> f64 {
        let sep = (self.high - self.low).max(1.0);
        ((med - self.threshold).abs() / sep * 2.0).min(1.0)
    }
}

/// Splits latency medians into a fast and a slow cluster at the largest
/// gap. Inconclusive when the gap is too small to be a row-conflict
/// signature (e.g. the schedule never produced a conflict).
fn split_classes(meds: &[f64]) -> Option<Classes> {
    let mut sorted = meds.to_vec();
    if sorted.len() < 2 {
        return None;
    }
    sorted.sort_by(f64::total_cmp);
    let (mut gap, mut at) = (0.0, 0);
    for i in 0..sorted.len() - 1 {
        let g = sorted[i + 1] - sorted[i];
        if g > gap {
            gap = g;
            at = i;
        }
    }
    if gap < MIN_CLUSTER_GAP {
        return None;
    }
    let low_n = (at + 1) as f64;
    let high_n = (sorted.len() - at - 1) as f64;
    Some(Classes {
        low: sorted[..=at].iter().sum::<f64>() / low_n,
        high: sorted[at + 1..].iter().sum::<f64>() / high_n,
        threshold: (sorted[at] + sorted[at + 1]) / 2.0,
    })
}

/// Median interval between latency spikes (mitigation / refresh stalls)
/// across all recon samples, when at least three spikes were seen.
fn estimate_cadence(samples: &[LatencySample], classes: &Classes) -> Option<u64> {
    let cutoff = classes.high + 3.0 * (classes.high - classes.low);
    let mut spikes: Vec<u64> =
        samples.iter().filter(|s| s.latency() as f64 > cutoff).map(|s| s.done).collect();
    spikes.sort_unstable();
    if spikes.len() < 3 {
        return None;
    }
    let mut gaps: Vec<f64> =
        spikes.windows(2).map(|w| (w[1] - w[0]) as f64).filter(|&g| g > 0.0).collect();
    median(&mut gaps).map(|m| m as u64)
}

// ------------------------------------------------------------ the driver

/// Runs the full recon campaign: a stride-discovery probe run, then a
/// verification probe run, classified offline from the latency samples.
/// Total scheduled accesses never exceed `cfg.recon_budget`.
pub fn infer_map(base: &Experiment, cfg: &AttackerConfig) -> InferredMap {
    let capacity = base.cfg.geometry.capacity_bytes();
    let mut rng = Xoshiro256::seed_from(cfg.seed ^ 0x5ECC_0117);
    let mut used = HashSet::new();
    let idle = PhysAddr(fresh(&mut rng, &mut used, capacity, 0));
    let budget = cfg.recon_budget;

    // ---- run 1: calibration + stride discovery ----
    let top_bit = capacity.trailing_zeros();
    let stride_bits: Vec<u32> = (7..top_bit).collect();
    let per_stride = ((budget.saturating_sub(CALIB_SAMPLES as u64)
        / stride_bits.len().max(1) as u64) as usize)
        .clamp(MIN_PAIR_SAMPLES, STRIDE_SAMPLES)
        & !1; // even: both pair members sampled equally
    let mut phases = vec![Phase {
        kind: PhaseKind::Calib,
        a: PhysAddr(fresh(&mut rng, &mut used, capacity, 0)),
        b: PhysAddr(0),
        samples: CALIB_SAMPLES.min(budget as usize),
    }];
    for &j in &stride_bits {
        let x = fresh(&mut rng, &mut used, capacity, 1 << j);
        phases.push(Phase {
            kind: PhaseKind::Stride(j),
            a: PhysAddr(x),
            b: PhysAddr(x | (1 << j)),
            samples: per_stride,
        });
    }
    let mut spent: u64 = phases.iter().map(|p| p.samples as u64).sum();
    if spent > budget {
        // Degenerate budget: drop stride phases from the top until the
        // schedule fits. The resulting map is (realistically) useless.
        while spent > budget && phases.len() > 1 {
            spent -= phases.pop().expect("len > 1").samples as u64;
        }
    }
    let discovery_samples = probe_run(base, schedule(&phases), idle);
    let meds = phase_medians(&phases, &discovery_samples);
    let all_meds: Vec<f64> = meds.iter().filter_map(|m| *m).collect();
    let classes = split_classes(&all_meds);

    let row_shift = classes.and_then(|c| {
        let slow: Vec<u32> = phases
            .iter()
            .zip(&meds)
            .filter_map(|(p, m)| match (p.kind, m) {
                (PhaseKind::Stride(j), Some(m)) if *m >= c.threshold => Some(j),
                _ => None,
            })
            .collect();
        let shift = *slow.iter().min()?;
        // Every bit at or above the row shift toggles only row bits, so
        // all of them must probe slow; tolerate a little noise.
        let above = stride_bits.iter().filter(|&&j| j >= shift).count();
        (slow.len() * 4 >= above * 3).then_some(shift)
    });

    // ---- run 2: pair verification ----
    let mut pairs = Vec::new();
    let mut verify_samples = Vec::new();
    if let (Some(shift), Some(classes)) = (row_shift, classes) {
        let stride = 1u64 << shift;
        let remaining = budget.saturating_sub(spent);
        let n_pairs = ((remaining / (2 * PAIR_SAMPLES as u64)) as usize).min(MAX_VERIFY_PAIRS);
        if n_pairs > 0 {
            // Believed same-bank adjacent pairs share one base with bits
            // [shift, shift+7) cleared, leaving room for 64 rows.
            let b = fresh(&mut rng, &mut used, capacity, 0x7F << shift);
            let mut vphases = Vec::new();
            for k in 0..n_pairs as u64 {
                vphases.push(Phase {
                    kind: PhaseKind::Verify,
                    a: PhysAddr(b + 2 * k * stride),
                    b: PhysAddr(b + (2 * k + 1) * stride),
                    samples: PAIR_SAMPLES,
                });
            }
            // Controls toggle a sub-row-stride bit (column / bank /
            // bank-group / rank territory): believed *not* to conflict.
            for m in 0..n_pairs as u32 {
                let bit = 7 + (m % (shift - 7).max(1));
                let c = fresh(&mut rng, &mut used, capacity, 1 << bit);
                vphases.push(Phase {
                    kind: PhaseKind::Control,
                    a: PhysAddr(c),
                    b: PhysAddr(c | (1 << bit)),
                    samples: PAIR_SAMPLES,
                });
            }
            spent += vphases.iter().map(|p| p.samples as u64).sum::<u64>();
            verify_samples = probe_run(base, schedule(&vphases), idle);
            let vmeds = phase_medians(&vphases, &verify_samples);
            for (p, m) in vphases.iter().zip(&vmeds) {
                if let Some(m) = m {
                    pairs.push(PairVerdict {
                        a: p.a,
                        b: p.b,
                        same_bank: *m >= classes.threshold,
                        confidence: classes.confidence(*m),
                    });
                }
            }
        }
    }

    let cadence_cycles = classes.and_then(|c| {
        let mut all = discovery_samples;
        all.extend(verify_samples);
        estimate_cadence(&all, &c)
    });

    InferredMap { row_shift, pairs, cadence_cycles, probes_spent: spent }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_classes_finds_the_conflict_cluster() {
        let meds = [40.0, 42.0, 41.0, 43.0, 95.0, 97.0, 99.0];
        let c = split_classes(&meds).expect("clear bimodal split");
        assert!(c.threshold > 43.0 && c.threshold < 95.0);
        assert!(c.low < 45.0 && c.high > 90.0);
        assert!(c.confidence(41.0) > 0.9);
        assert!(c.confidence(c.threshold) < 0.05);
        assert!(split_classes(&[40.0, 41.0, 42.0]).is_none(), "no gap, no verdict");
    }

    #[test]
    fn ground_truth_relation_matches_decode() {
        let geom = Geometry::paper_baseline();
        let row1 = geom.encode(&DramAddr::new(0, 0, 0, 0, 1, 0)).0;
        let a = PhysAddr(0x4000_0040);
        assert!(same_bank_conflict(&geom, a, PhysAddr(a.0 + row1)), "adjacent rows conflict");
        assert!(!same_bank_conflict(&geom, a, PhysAddr(a.0 ^ (1 << 14))), "bank bit: no conflict");
        assert!(!same_bank_conflict(&geom, a, a), "same row: no conflict");
    }

    #[test]
    fn schedule_alternates_pairs_and_repeats_calib() {
        let phases = [
            Phase { kind: PhaseKind::Calib, a: PhysAddr(64), b: PhysAddr(0), samples: 3 },
            Phase {
                kind: PhaseKind::Stride(20),
                a: PhysAddr(128),
                b: PhysAddr(128 + (1 << 20)),
                samples: 4,
            },
        ];
        let entries = schedule(&phases);
        let addrs: Vec<u64> = entries.iter().map(|e| e.addr.0).collect();
        assert_eq!(addrs, vec![64, 64, 64, 128, 128 + (1 << 20), 128, 128 + (1 << 20)]);
        assert!(entries.iter().all(|e| e.bubbles == PROBE_BUBBLES && !e.is_write));
    }
}
