//! The stage driver: recon → hammer → victim per experiment cell.
//!
//! One *cell* is an [`Experiment`] carrying an [`AttackerConfig`]
//! (workload × tracker × knowledge level). [`run_cell`] walks the three
//! stages — acquire a mapping belief, compile and run the hammer, place
//! and adjudicate victims — and folds the outcome into a
//! [`PipelineVerdict`]: flips *and* slowdown, plus the recon quality
//! metrics that explain them.
//!
//! Verdicts are content-addressed: [`run_attacker_sweep`] keys each cell
//! by the canonical descriptor of its attack-stripped experiment (the
//! attacker section included) and reads warm cells straight from a
//! [`DiskStore`] — a repeated sweep executes zero simulations and emits
//! byte-identical artifacts. [`redteam_main`] is the `redteam` binary's
//! entry point; with `--attacker` it extends the attacklab campaign with
//! one row per knowledge level.

use analysis::OracleProbe;
use attacklab::campaign::{run_campaign, CampaignReport, CampaignRow};
use attacklab::scenario::{ScenarioSpec, Shape};
use attacklab::search::EvalRecord;
use sim::metrics::RunStats;
use sim::{
    normalized_performance, AttackChoice, AttackerConfig, AttackerKnowledge, CustomAttack, Engine,
    Experiment, SweepSpec, TelemetrySpec,
};
use sim_core::cache::{content_key, DiskStore};
use sim_core::json::Json;
use std::collections::BTreeMap;

use crate::hammer::{HammerPlan, PhysRoundRobin, PAIRS};
use crate::recon;
use crate::victim::VictimOrchestrator;

/// Verdict-cache epoch, folded into every cache key. Bump when the
/// pipeline's semantics change and stale verdicts must re-simulate.
const VERDICT_EPOCH: &str = "attackpipe-epoch1";

// ---------------------------------------------------------------- verdict

/// Everything one pipeline cell concluded: did the attacker flip bits,
/// what did the attempt cost the benign cores, and how good was the
/// recon that steered it.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineVerdict {
    /// Benign workload sharing the machine.
    pub workload: String,
    /// Tracker label (display name plus parameter overrides).
    pub tracker: String,
    /// Attacker knowledge level this cell ran under.
    pub knowledge: AttackerKnowledge,
    /// Victim rows whose peak disturbance reached their HC threshold.
    pub flips: u64,
    /// Victim rows placed.
    pub victims: u64,
    /// Highest peak disturbance on any victim row (pressure even when
    /// nothing flipped).
    pub max_victim_peak: u32,
    /// Mean benign IPC relative to the insecure attack-free baseline.
    pub normalized_performance: f64,
    /// `1 / normalized_performance` — the campaign's slowdown metric.
    pub slowdown: f64,
    /// Fraction of verification pairs recon classified correctly
    /// (timing-recon only; `None` when no pairs were probed).
    pub recon_accuracy: Option<f64>,
    /// Of the truly same-bank pairs probed, the fraction recognized.
    pub recon_recall: Option<f64>,
    /// Inferred row-field shift (believed stride = `1 << shift`).
    pub recon_row_shift: Option<u32>,
    /// Probe accesses the recon campaign actually scheduled.
    pub recon_probes: u64,
    /// Estimated mitigation cadence in bus cycles, when observed.
    pub recon_cadence_cycles: Option<u64>,
    /// The stride the hammer was compiled from (`None`: blind fallback).
    pub believed_stride: Option<u64>,
    /// Mitigation commands issued (VRR + RFM).
    pub mitigations: u64,
    /// Tracker counter reads + writes injected into DRAM.
    pub counter_ops: u64,
    /// Structure-reset sweeps triggered.
    pub reset_sweeps: u64,
    /// Total DRAM energy, millijoules.
    pub energy_mj: f64,
}

impl PipelineVerdict {
    /// Canonical JSON encoding (fixed field order, so equal verdicts
    /// render byte-identically — the cache and artifact contract).
    pub fn to_json(&self) -> Json {
        let opt = |v: Option<f64>| v.map_or(Json::Null, Json::num);
        Json::obj([
            ("workload", Json::str(&self.workload)),
            ("tracker", Json::str(&self.tracker)),
            ("knowledge", Json::str(self.knowledge.key())),
            ("flips", Json::count(self.flips)),
            ("victims", Json::count(self.victims)),
            ("max_victim_peak", Json::count(self.max_victim_peak as u64)),
            ("normalized_performance", Json::num(self.normalized_performance)),
            ("slowdown", Json::num(self.slowdown)),
            ("recon_accuracy", opt(self.recon_accuracy)),
            ("recon_recall", opt(self.recon_recall)),
            ("recon_row_shift", opt(self.recon_row_shift.map(|s| s as f64))),
            ("recon_probes", Json::count(self.recon_probes)),
            ("recon_cadence_cycles", opt(self.recon_cadence_cycles.map(|c| c as f64))),
            ("believed_stride", opt(self.believed_stride.map(|s| s as f64))),
            ("mitigations", Json::count(self.mitigations)),
            ("counter_ops", Json::count(self.counter_ops)),
            ("reset_sweeps", Json::count(self.reset_sweeps)),
            ("energy_mj", Json::num(self.energy_mj)),
        ])
    }

    /// Decodes [`Self::to_json`]'s encoding; errors name the bad field.
    pub fn from_json(j: &Json) -> Result<Self, String> {
        let knowledge = AttackerKnowledge::by_key(&text(j, "knowledge")?)?;
        Ok(Self {
            workload: text(j, "workload")?,
            tracker: text(j, "tracker")?,
            knowledge,
            flips: num(j, "flips")? as u64,
            victims: num(j, "victims")? as u64,
            max_victim_peak: num(j, "max_victim_peak")? as u32,
            normalized_performance: num(j, "normalized_performance")?,
            slowdown: num(j, "slowdown")?,
            recon_accuracy: opt_num(j, "recon_accuracy")?,
            recon_recall: opt_num(j, "recon_recall")?,
            recon_row_shift: opt_num(j, "recon_row_shift")?.map(|v| v as u32),
            recon_probes: num(j, "recon_probes")? as u64,
            recon_cadence_cycles: opt_num(j, "recon_cadence_cycles")?.map(|v| v as u64),
            believed_stride: opt_num(j, "believed_stride")?.map(|v| v as u64),
            mitigations: num(j, "mitigations")? as u64,
            counter_ops: num(j, "counter_ops")? as u64,
            reset_sweeps: num(j, "reset_sweeps")? as u64,
            energy_mj: num(j, "energy_mj")?,
        })
    }
}

fn want<'a>(j: &'a Json, key: &str) -> Result<&'a Json, String> {
    j.get(key).ok_or_else(|| format!("missing field '{key}'"))
}

fn text(j: &Json, key: &str) -> Result<String, String> {
    match want(j, key)? {
        Json::Str(s) => Ok(s.clone()),
        other => Err(format!("field '{key}': expected a string, got {other:?}")),
    }
}

fn num(j: &Json, key: &str) -> Result<f64, String> {
    match want(j, key)? {
        Json::Num(n) => Ok(*n),
        other => Err(format!("field '{key}': expected a number, got {other:?}")),
    }
}

fn opt_num(j: &Json, key: &str) -> Result<Option<f64>, String> {
    match want(j, key)? {
        Json::Null => Ok(None),
        Json::Num(n) => Ok(Some(*n)),
        other => Err(format!("field '{key}': expected a number or null, got {other:?}")),
    }
}

// ---------------------------------------------------------------- running

/// The insecure attack-free baseline every verdict in a cell family
/// normalizes against. The attacker core slot is occupied (by the idle
/// trace the reference build substitutes), so benign-core indices line
/// up with the hammer run; the result depends only on the workload and
/// system configuration, never on the knowledge level — one reference
/// serves a whole sweep's cells for a workload.
pub fn reference_for(e: &Experiment) -> RunStats {
    let mut r = e.clone();
    r.telemetry = TelemetrySpec::default();
    // The attacker axis always normalizes against the attack-free
    // baseline (flips-vs-slowdown needs an absolute cost), so the
    // isolate-tracker-overhead normalization does not apply here.
    r.isolate_tracker_overhead = false;
    r.custom_attack = Some(idle_placeholder());
    let engine = r.engine;
    r.build_system(true).run_engine(engine)
}

/// A placeholder attack whose only job is to make the reference build
/// reserve the attacker core; the reference run replaces it with the
/// idle trace, so its pattern never executes.
fn idle_placeholder() -> CustomAttack {
    CustomAttack::new("attackpipe-reference", true, |_, _| {
        Box::new(attacklab::pattern::PatternTrace(Box::new(PhysRoundRobin::new(
            vec![sim_core::addr::PhysAddr(0)],
            10_000,
        ))))
    })
}

/// Runs the full pipeline for one cell: acquire the knowledge level's
/// belief (timing-recon simulates its probe campaign here), compile and
/// run the hammer against the tracker, adjudicate victim flips, and
/// score the benign cost against `reference`.
///
/// # Panics
///
/// Panics if the experiment carries no [`AttackerConfig`]
/// (`Experiment::attacker`) or an unknown workload.
pub fn run_cell(e: &Experiment, reference: &RunStats) -> PipelineVerdict {
    let cfg = e.attacker.expect("run_cell needs an attacker config on the experiment");
    let mut model = recon::model_for(cfg.knowledge);
    let belief = model.acquire(e, &cfg);

    let geom = e.cfg.geometry;
    let orchestrator = VictimOrchestrator::new(geom, e.cfg.nrh, cfg.seed);
    let placement = orchestrator.place();
    let plan = HammerPlan::compile(
        &belief,
        &cfg,
        geom.capacity_bytes(),
        placement.region_base,
        cfg.knowledge.key(),
    );

    let mut he = e.clone();
    he.custom_attack = Some(plan.custom_attack());
    he.telemetry = TelemetrySpec { oracle: true, ..TelemetrySpec::default() };
    let engine = he.engine;
    let mut sys = he.build_system(false);
    let run = sys.run_engine(engine);
    let mut probes = sys.take_probes();
    let oracle = recon::take_probe::<OracleProbe>(&mut probes)
        .expect("the hammer run attaches the ground-truth oracle");
    let flip = orchestrator.adjudicate(&placement, &oracle);

    let np = normalized_performance(&run, reference, &he.benign_cores());
    let inferred = belief.inferred.as_ref();
    PipelineVerdict {
        workload: e.workload.clone(),
        tracker: e.tracker.label(),
        knowledge: cfg.knowledge,
        flips: flip.flips,
        victims: flip.victims,
        max_victim_peak: flip.max_victim_peak,
        normalized_performance: np,
        slowdown: 1.0 / np.max(1e-6),
        recon_accuracy: inferred.and_then(|m| m.accuracy(&geom)),
        recon_recall: inferred.and_then(|m| m.same_bank_recall(&geom)),
        recon_row_shift: inferred.and_then(|m| m.row_shift),
        recon_probes: inferred.map_or(0, |m| m.probes_spent),
        recon_cadence_cycles: inferred.and_then(|m| m.cadence_cycles),
        believed_stride: plan.believed_stride,
        mitigations: run.mem.vrr_commands + run.mem.rfm_commands,
        counter_ops: run.mem.counter_reads + run.mem.counter_writes,
        reset_sweeps: run.mem.reset_sweeps,
        energy_mj: run.energy_mj,
    }
}

// ---------------------------------------------------------------- caching

/// The cell's verdict-cache descriptor: the canonical descriptor of the
/// experiment with its *attack* stripped (the pipeline derives the
/// hammer from the attacker section, which stays in) — so the key pins
/// workload, tracker, parameters, system options, and the full attacker
/// configuration, and nothing else.
fn verdict_descriptor(e: &Experiment) -> Option<String> {
    let mut stripped = e.clone();
    stripped.custom_attack = None;
    stripped.attack = AttackChoice::None;
    sim::cell_key(&stripped).map(|k| k.descriptor)
}

fn verdict_key(descriptor: &str) -> String {
    content_key(format!("{VERDICT_EPOCH}|{descriptor}").as_bytes())
}

fn lookup_verdict(store: &DiskStore, descriptor: &str) -> Option<PipelineVerdict> {
    let key = verdict_key(descriptor);
    let payload = store.get(&key)?;
    let decode = || -> Result<PipelineVerdict, String> {
        let j = Json::parse(&payload).map_err(|e| e.to_string())?;
        if text(&j, "epoch")? != VERDICT_EPOCH {
            return Err("epoch mismatch".to_string());
        }
        if text(&j, "descriptor")? != descriptor {
            return Err("descriptor mismatch (key collision)".to_string());
        }
        PipelineVerdict::from_json(want(&j, "verdict")?)
    };
    match decode() {
        Ok(v) => Some(v),
        Err(msg) => {
            eprintln!("attackpipe: evicting unusable cache entry {key}: {msg}");
            store.evict(&key);
            None
        }
    }
}

fn save_verdict(store: &DiskStore, descriptor: &str, v: &PipelineVerdict) {
    let payload = Json::obj([
        ("epoch", Json::str(VERDICT_EPOCH)),
        ("descriptor", Json::str(descriptor)),
        ("verdict", v.to_json()),
    ])
    .render();
    if let Err(e) = store.put(&verdict_key(descriptor), &payload) {
        eprintln!("attackpipe: cannot write cache entry: {e}");
    }
}

// ---------------------------------------------------------------- sweeps

/// Outcome of [`run_attacker_sweep`]: one verdict per cell, in spec
/// expansion order, plus the cache traffic. The JSON export excludes the
/// hit/miss counters on purpose — a warm re-run must render
/// byte-identically to the cold run that filled the cache.
#[derive(Debug, Clone)]
pub struct AttackerSweepReport {
    /// Sweep name (from the spec).
    pub name: String,
    /// Per-cell verdicts, in expansion order.
    pub verdicts: Vec<PipelineVerdict>,
    /// Cells expanded (failures are dropped from `verdicts` with a
    /// warning, so this can exceed `verdicts.len()`).
    pub cells: usize,
    /// Cells answered from the verdict cache.
    pub hits: u64,
    /// Cells that had to simulate.
    pub misses: u64,
}

impl AttackerSweepReport {
    /// Aligned text table: one row per verdict, grouped as expanded
    /// (knowledge levels of one tracker stay adjacent).
    pub fn leaderboard_table(&self) -> String {
        let mut out = format!(
            "{:<16} {:<13} {:<13} {:>7} {:>6} {:>9} {:>9} {:>9} {:>7}\n",
            "workload",
            "tracker",
            "knowledge",
            "flips",
            "peak",
            "norm.perf",
            "slowdown",
            "acc",
            "recall"
        );
        let pct = |v: Option<f64>| match v {
            Some(v) => format!("{:.0}%", v * 100.0),
            None => "-".to_string(),
        };
        for v in &self.verdicts {
            out.push_str(&format!(
                "{:<16} {:<13} {:<13} {:>4}/{:<2} {:>6} {:>9.3} {:>8.3}x {:>9} {:>7}\n",
                v.workload,
                v.tracker,
                v.knowledge.key(),
                v.flips,
                v.victims,
                v.max_victim_peak,
                v.normalized_performance,
                v.slowdown,
                pct(v.recon_accuracy),
                pct(v.recon_recall),
            ));
        }
        out
    }

    /// Serializes the report as JSON (deterministic: equal verdict sets
    /// render byte-identically, cached or not).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("name", Json::str(&self.name)),
            ("cells", Json::count(self.cells as u64)),
            ("verdicts", Json::Arr(self.verdicts.iter().map(PipelineVerdict::to_json).collect())),
        ])
    }
}

fn reference_scope(e: &Experiment) -> String {
    let engine = match e.engine {
        Engine::Dense => "dense",
        Engine::EventDriven => "event-driven",
    };
    format!("{}|{engine}", e.workload)
}

/// Expands a spec's `[attacker]` cells and runs the pipeline over them:
/// verdict-cache lookups first, then one shared reference per workload,
/// then the missing cells in parallel. `cache_dir` overrides the spec's
/// `[cache]` section (`None` falls back to it; no directory anywhere
/// disables caching).
pub fn run_attacker_sweep(
    spec: &SweepSpec,
    cache_dir: Option<&str>,
) -> Result<AttackerSweepReport, String> {
    let experiments: Vec<Experiment> = spec
        .expand()
        .map_err(|e| e.to_string())?
        .into_iter()
        .filter(|e| e.attacker.is_some())
        .collect();
    if experiments.is_empty() {
        return Err("spec has no [attacker] section; nothing for the pipeline to run".to_string());
    }
    let dir = cache_dir
        .map(str::to_string)
        .or_else(|| spec.cache.as_ref().and_then(|c| c.effective_dir().map(str::to_string)));
    let store = dir.and_then(|dir| match DiskStore::open(&dir) {
        Ok(store) => Some(store),
        Err(e) => {
            eprintln!("attackpipe: cannot open verdict cache {dir}: {e}; running uncached");
            None
        }
    });

    let cells = experiments.len();
    let mut slots: Vec<Option<PipelineVerdict>> = Vec::with_capacity(cells);
    let mut miss_slots = Vec::new();
    let mut miss_cells = Vec::new();
    let mut hits = 0u64;
    for (i, e) in experiments.into_iter().enumerate() {
        let descriptor = verdict_descriptor(&e);
        let cached = match (&store, &descriptor) {
            (Some(store), Some(d)) => lookup_verdict(store, d),
            _ => None,
        };
        match cached {
            Some(v) => {
                hits += 1;
                slots.push(Some(v));
            }
            None => {
                slots.push(None);
                miss_slots.push(i);
                miss_cells.push(e);
            }
        }
    }
    let misses = miss_cells.len() as u64;

    // References are computed up front (one per workload × engine) so the
    // parallel phase only reads them.
    let mut references: BTreeMap<String, RunStats> = BTreeMap::new();
    for e in &miss_cells {
        references.entry(reference_scope(e)).or_insert_with(|| reference_for(e));
    }
    let references = &references;
    let outcomes = sim::parallel_map(miss_cells, |e| {
        let reference = &references[&reference_scope(&e)];
        let verdict = run_cell(&e, reference);
        (e, verdict)
    });
    for (j, outcome) in outcomes.into_iter().enumerate() {
        match outcome {
            Ok((e, verdict)) => {
                if let (Some(store), Some(descriptor)) = (&store, verdict_descriptor(&e)) {
                    save_verdict(store, &descriptor, &verdict);
                }
                slots[miss_slots[j]] = Some(verdict);
            }
            Err(e) => eprintln!("attackpipe: cell failed, skipping: {e}"),
        }
    }
    Ok(AttackerSweepReport {
        name: spec.name.clone(),
        verdicts: slots.into_iter().flatten().collect(),
        cells,
        hits,
        misses,
    })
}

// ---------------------------------------------------------------- redteam

/// The nominal scenario genome attacker rows carry in campaign exports:
/// the double-sided ladder's shape (one bank, `PAIRS + 1` aggressors),
/// so JSON/CSV consumers see a well-formed spec column.
fn nominal_scenario() -> ScenarioSpec {
    let mut spec = ScenarioSpec::baseline(workloads::Attack::CacheThrash);
    spec.shape = Shape::Hammer { banks: 1, per_bank: PAIRS as u32 + 1 };
    spec
}

fn attacker_rows(
    report: &mut CampaignReport,
    levels: &[AttackerKnowledge],
) -> Vec<PipelineVerdict> {
    let c = report.config.clone();
    let mut verdicts = Vec::new();
    let mut reference: Option<RunStats> = None;
    for tracker in &c.trackers {
        for &level in levels {
            let cfg = AttackerConfig {
                knowledge: level,
                recon_budget: AttackerConfig::DEFAULT_RECON_BUDGET,
                // One --seed reproduces the whole campaign, attacker side
                // included.
                seed: c.seed,
            };
            let e = Experiment::new(&c.workload)
                .tracker(tracker.clone())
                .window_us(c.window_us)
                .nrh(c.nrh)
                .seed(c.seed)
                .attacker(cfg);
            if reference.is_none() {
                reference = Some(reference_for(&e));
            }
            let verdict = run_cell(&e, reference.as_ref().expect("just computed"));
            report.rows.push(CampaignRow {
                tracker: tracker.label(),
                origin: "attacker",
                record: EvalRecord {
                    spec: nominal_scenario(),
                    name: format!("attackpipe:{}", level.key()),
                    slowdown: verdict.slowdown,
                    normalized_performance: verdict.normalized_performance,
                    mitigations: verdict.mitigations,
                    counter_ops: verdict.counter_ops,
                    reset_sweeps: verdict.reset_sweeps,
                    energy_mj: verdict.energy_mj,
                    time_to_max_slowdown_us: None,
                    recovery_us: None,
                    recon_accuracy: verdict.recon_accuracy,
                    flips: Some(verdict.flips),
                },
            });
            verdicts.push(verdict);
        }
    }
    verdicts
}

/// Writes `content` to `path`, creating parent directories first.
fn write_artifact(path: &str, content: &str) -> std::io::Result<()> {
    if let Some(parent) = std::path::Path::new(path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(path, content)
}

/// The `redteam` binary's entry point. A leading `profile` / `evaluate`
/// / `attack` subcommand dispatches to the profiler's campaign workflow;
/// otherwise, without `--attacker` this is the plain attacklab campaign,
/// and with it, every tracker additionally runs the pipeline once per
/// knowledge level, and those rows (origin `"attacker"`, scenario
/// `attackpipe:<level>`) join the campaign's exports.
pub fn redteam_main(args: &[String]) -> i32 {
    if let Some(first) = args.first() {
        if matches!(first.as_str(), "profile" | "evaluate" | "attack") {
            return profiler::cli::main_with_args(args);
        }
    }
    let opts = match attacklab::cli::parse_args(args) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return 2;
        }
    };
    if opts.attacker.is_empty() {
        return attacklab::cli::main_with_args(args);
    }
    let mut report = run_campaign(&opts.campaign);
    let verdicts = attacker_rows(&mut report, &opts.attacker);
    attacklab::cli::print_report(&report);
    println!();
    println!("attacker-knowledge axis (flips vs slowdown per level):");
    let pct = |v: Option<f64>| match v {
        Some(v) => format!("{:.0}%", v * 100.0),
        None => "-".to_string(),
    };
    for v in &verdicts {
        println!(
            "  {:<13} {:<13} flips {:>2}/{:<2} peak {:>6} slowdown {:>7.3}x recon-acc {:>4} recall {:>4}",
            v.tracker,
            v.knowledge.key(),
            v.flips,
            v.victims,
            v.max_victim_peak,
            v.slowdown,
            pct(v.recon_accuracy),
            pct(v.recon_recall),
        );
    }
    let json = report.to_json().render();
    if let Err(e) = write_artifact(&opts.out, &json) {
        eprintln!("cannot write {}: {e}", opts.out);
        return 1;
    }
    println!("\nresults written to {}", opts.out);
    if let Some(csv_path) = &opts.csv {
        if let Err(e) = write_artifact(csv_path, &report.to_csv()) {
            eprintln!("cannot write {csv_path}: {e}");
            return 1;
        }
        println!("rows written to {csv_path}");
    }
    0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn verdict() -> PipelineVerdict {
        PipelineVerdict {
            workload: "povray_like".to_string(),
            tracker: "Hydra".to_string(),
            knowledge: AttackerKnowledge::TimingRecon,
            flips: 3,
            victims: 6,
            max_victim_peak: 812,
            normalized_performance: 0.91,
            slowdown: 1.0 / 0.91,
            recon_accuracy: Some(0.9375),
            recon_recall: Some(1.0),
            recon_row_shift: Some(20),
            recon_probes: 2400,
            recon_cadence_cycles: None,
            believed_stride: Some(1 << 20),
            mitigations: 17,
            counter_ops: 120,
            reset_sweeps: 0,
            energy_mj: 1.25,
        }
    }

    #[test]
    fn verdict_json_round_trips_exactly() {
        let v = verdict();
        let decoded = PipelineVerdict::from_json(&v.to_json()).expect("decodes");
        assert_eq!(v, decoded);
        // Canonical rendering: the cache's byte-identity contract.
        assert_eq!(v.to_json().render(), decoded.to_json().render());
        // Options encode as null and come back as None.
        let mut blind = v;
        blind.recon_accuracy = None;
        blind.believed_stride = None;
        let decoded = PipelineVerdict::from_json(&blind.to_json()).expect("decodes");
        assert_eq!(blind, decoded);
    }

    #[test]
    fn verdict_decode_names_the_bad_field() {
        let mut j = verdict().to_json();
        if let Json::Obj(pairs) = &mut j {
            for (k, v) in pairs.iter_mut() {
                if k == "flips" {
                    *v = Json::Str("three".to_string());
                }
            }
        }
        let err = PipelineVerdict::from_json(&j).expect_err("bad type");
        assert!(err.contains("flips"), "{err}");
    }

    #[test]
    fn verdict_cache_keys_pin_the_attacker_and_ignore_the_attack() {
        let base = Experiment::quick("povray_like")
            .tracker("hydra")
            .attacker(AttackerConfig::new(AttackerKnowledge::Blind));
        let d0 = verdict_descriptor(&base).expect("cacheable");
        // The attack field is stripped: a custom attack attached by the
        // hammer stage does not change the verdict key.
        let mut with_attack = base.clone();
        with_attack.custom_attack = Some(idle_placeholder());
        assert_eq!(verdict_descriptor(&with_attack).unwrap(), d0);
        // The attacker section is part of the key.
        let other = base.clone().attacker(AttackerConfig::new(AttackerKnowledge::TimingRecon));
        assert_ne!(verdict_descriptor(&other).unwrap(), d0);
        assert_ne!(verdict_key(&d0), verdict_key(&verdict_descriptor(&other).unwrap()));
    }

    #[test]
    fn verdict_store_round_trips_and_rejects_descriptor_mismatch() {
        let dir =
            std::env::temp_dir().join(format!("attackpipe-verdict-cache-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = DiskStore::open(&dir).expect("open");
        let v = verdict();
        save_verdict(&store, "descriptor-a", &v);
        assert_eq!(lookup_verdict(&store, "descriptor-a"), Some(v.clone()));
        // A colliding key with the wrong descriptor is evicted, not served.
        let key = verdict_key("descriptor-b");
        let wrong = Json::obj([
            ("epoch", Json::str(VERDICT_EPOCH)),
            ("descriptor", Json::str("descriptor-a")),
            ("verdict", v.to_json()),
        ])
        .render();
        store.put(&key, &wrong).unwrap();
        assert_eq!(lookup_verdict(&store, "descriptor-b"), None);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sweep_report_exports_deterministically_without_cache_counters() {
        let report = AttackerSweepReport {
            name: "t".to_string(),
            verdicts: vec![verdict()],
            cells: 1,
            hits: 0,
            misses: 1,
        };
        let warm = AttackerSweepReport { hits: 1, misses: 0, ..report.clone() };
        assert_eq!(report.to_json().render(), warm.to_json().render());
        let table = report.leaderboard_table();
        assert!(table.contains("timing-recon") && table.contains("94%"), "{table}");
    }
}
