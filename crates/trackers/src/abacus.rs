//! ABACuS (Olgun et al., USENIX Security 2024): shared Misra-Gries tracking.
//!
//! One Misra-Gries table is shared by **all banks in the channel**. Because
//! attackers hammer the same row ID in every bank simultaneously, an entry
//! holds a row ID, one shared activation counter, and a per-bank bit-vector
//! so that same-row activations across banks count once per "round".
//!
//! Untracked activations bump the spillover counter; once the spillover
//! reaches the mitigation threshold any untracked row could be near the
//! limit, so ABACuS must refresh **every row in the channel** and reset —
//! the Perf-Attack lever (Section III-B): sequentially activating distinct
//! row IDs overflows the spillover every `entries x N_RH/2` activations.

use crate::TrackerParams;
use sim_core::registry::{ParamSpec, RegistryError, TrackerSpec};
use sim_core::time::Cycle;
use sim_core::tracker::{Activation, ResetScope, RowHammerTracker, StorageOverhead, TrackerAction};
use std::collections::HashMap;

/// Misra-Gries table sizes from the paper, per N_RH.
pub fn table_entries_for(nrh: u32) -> usize {
    match nrh {
        0..=125 => 9783,
        126..=250 => 4931,
        251..=500 => 2466,
        501..=1000 => 1233,
        1001..=2000 => 617,
        _ => 309,
    }
}

/// Structure sizes for one ABACuS instance. [`AbacusParams::new`] sizes the
/// Misra-Gries table from the paper's per-N_RH table; the registry exposes
/// the entry count (the spillover overflows every `entries x N_RH/2`
/// activations, so it is the sensitivity knob) with `0` = auto.
#[derive(Debug, Clone, Copy)]
pub struct AbacusParams {
    /// Shared construction parameters.
    pub base: TrackerParams,
    /// Misra-Gries table entries; `0` selects the paper's size for N_RH.
    pub entries: usize,
}

impl AbacusParams {
    /// The paper-baseline sizing (auto from N_RH).
    pub fn new(base: TrackerParams) -> Self {
        Self { base, entries: 0 }
    }

    fn resolved_entries(&self) -> usize {
        if self.entries == 0 {
            table_entries_for(self.base.nrh)
        } else {
            self.entries
        }
    }
}

#[derive(Debug, Clone, Default)]
struct Entry {
    row: u32,
    count: u32,
    /// One bit per (rank, bank) in the channel.
    bits: u64,
}

/// The ABACuS tracker for one channel.
#[derive(Debug)]
pub struct Abacus {
    p: TrackerParams,
    /// row-id -> table slot.
    index: HashMap<u32, usize>,
    entries: Vec<Entry>,
    free: Vec<usize>,
    spillover: u32,
    /// Channel-wide reset sweeps triggered by spillover overflow.
    pub overflow_resets: u64,
}

impl Abacus {
    /// Creates an ABACuS instance sized for `p.nrh` per the paper.
    pub fn new(p: TrackerParams) -> Self {
        Self::with_params(AbacusParams::new(p)).expect("paper-baseline sizing is valid")
    }

    /// Creates an ABACuS instance with an explicit table size.
    pub fn with_params(ap: AbacusParams) -> Result<Self, RegistryError> {
        let n = ap.resolved_entries();
        if n == 0 {
            return Err(RegistryError::invalid("abacus", "entries", "must be nonzero"));
        }
        Ok(Self {
            p: ap.base,
            index: HashMap::with_capacity(n),
            entries: vec![Entry::default(); n],
            free: (0..n).rev().collect(),
            spillover: 0,
            overflow_resets: 0,
        })
    }

    /// Configured table size.
    pub fn capacity(&self) -> usize {
        self.entries.len()
    }

    /// Current spillover counter value.
    pub fn spillover(&self) -> u32 {
        self.spillover
    }

    fn clear(&mut self) {
        self.index.clear();
        for e in &mut self.entries {
            *e = Entry::default();
        }
        self.free = (0..self.entries.len()).rev().collect();
        self.spillover = 0;
    }

    fn bank_bit(&self, act: &Activation) -> u64 {
        let geom = &self.p.geometry;
        let b = act.addr.rank as u32 * geom.banks_per_rank() + geom.bank_in_rank(&act.addr);
        1u64 << (b % 64)
    }
}

impl RowHammerTracker for Abacus {
    fn name(&self) -> &'static str {
        "ABACUS"
    }

    fn on_activation(&mut self, act: Activation, actions: &mut Vec<TrackerAction>) {
        let row = act.addr.row;
        let bit = self.bank_bit(&act);
        let nm = self.p.nm();

        if let Some(&slot) = self.index.get(&row) {
            let (count, hit_threshold) = {
                let e = &mut self.entries[slot];
                if e.bits & bit != 0 {
                    // Second activation from the same bank: a new round.
                    e.count += 1;
                    e.bits = bit;
                    (e.count, e.count >= nm)
                } else {
                    e.bits |= bit;
                    (e.count, false)
                }
            };
            let _ = count;
            if hit_threshold {
                // The entry is shared by every bank in the channel: the same
                // row id may have been hammered in all of them, so ABACuS
                // refreshes the row's victims in every bank.
                let geom = self.p.geometry;
                for rank in 0..geom.ranks {
                    for bg in 0..geom.bank_groups {
                        for bank in 0..geom.banks_per_group {
                            actions.push(TrackerAction::MitigateRow(sim_core::addr::DramAddr {
                                channel: self.p.channel,
                                rank,
                                bank_group: bg,
                                bank,
                                row,
                                col: 0,
                            }));
                        }
                    }
                }
                self.entries[slot].count = self.spillover;
            }
            return;
        }

        // Untracked row: claim a free slot or displace per Misra-Gries.
        if let Some(slot) = self.free.pop() {
            self.index.remove(&self.entries[slot].row);
            self.entries[slot] = Entry { row, count: self.spillover, bits: bit };
            self.index.insert(row, slot);
            return;
        }
        // Misra-Gries: if some entry's count equals the spillover floor we
        // replace it; otherwise the activation lands on the spillover.
        if let Some((slot, _)) =
            self.entries.iter().enumerate().find(|(_, e)| e.count <= self.spillover)
        {
            let old = self.entries[slot].row;
            self.index.remove(&old);
            self.entries[slot] = Entry { row, count: self.spillover + 1, bits: bit };
            self.index.insert(row, slot);
            return;
        }
        self.spillover += 1;
        if self.spillover >= nm {
            // Every untracked row may be at the threshold: reset the channel.
            self.overflow_resets += 1;
            self.clear();
            actions
                .push(TrackerAction::ResetSweep(ResetScope::Channel { channel: self.p.channel }));
        }
    }

    fn on_refresh_window(&mut self, _cycle: Cycle, _actions: &mut Vec<TrackerAction>) {
        self.clear();
    }

    fn storage_overhead(&self) -> StorageOverhead {
        // Table III: 19.3 KB SRAM + 7.5 KB CAM per 32 GB (N_RH = 500:
        // 2466 entries x (16-bit row id in CAM + counter + 64-bit vector)).
        let (sram, cam) = abacus_storage(self.entries.len());
        StorageOverhead::new(sram, cam)
    }
}

fn abacus_storage(entries: usize) -> (u64, u64) {
    // Per entry: ~10 B of counter + bank bit-vector in SRAM, ~3 B of
    // row-id CAM — the baseline 2466 entries land on Table III's figures.
    (19_763 * entries as u64 / 2466, 7_680 * entries as u64 / 2466)
}

/// ABACuS's registry descriptor: key `abacus`, Misra-Gries table size
/// exposed as a tunable parameter (`0` = the paper's size for N_RH).
pub fn spec() -> TrackerSpec {
    TrackerSpec::new("abacus", "ABACUS", |p| {
        let mut ap = AbacusParams::new(TrackerParams::from_build(p));
        ap.entries = p.count("entries");
        Ok(Box::new(Abacus::with_params(ap)?))
    })
    .summary("ABACuS (Security'24): shared Misra-Gries table with spillover counter")
    .param(
        ParamSpec::int("entries", "Misra-Gries table entries (0 = the paper's size for N_RH)", 0)
            .range(0.0, (1u64 << 24) as f64),
    )
    .storage(|p| {
        let entries = match p.count("entries") {
            0 => table_entries_for(p.nrh),
            n => n,
        };
        let (sram, cam) = abacus_storage(entries);
        StorageOverhead::new(sram, cam)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::addr::DramAddr;
    use sim_core::req::SourceId;

    fn act_at(bank_group: u8, bank: u8, row: u32) -> Activation {
        Activation {
            addr: DramAddr::new(0, 0, bank_group, bank, row, 0),
            source: SourceId(0),
            cycle: 0,
        }
    }

    fn params() -> TrackerParams {
        TrackerParams::baseline(500, 0, 5)
    }

    #[test]
    fn table_sizes_match_paper() {
        assert_eq!(table_entries_for(4000), 309);
        assert_eq!(table_entries_for(2000), 617);
        assert_eq!(table_entries_for(1000), 1233);
        assert_eq!(table_entries_for(500), 2466);
        assert_eq!(table_entries_for(250), 4931);
        assert_eq!(table_entries_for(125), 9783);
    }

    #[test]
    fn single_bank_hammer_mitigated_at_nm() {
        let mut t = Abacus::new(params());
        let mut out = Vec::new();
        let mut first = None;
        for i in 1..=600u32 {
            out.clear();
            t.on_activation(act_at(0, 0, 7), &mut out);
            if out.iter().any(|x| matches!(x, TrackerAction::MitigateRow(_))) {
                first = Some(i);
                break;
            }
        }
        // Bit-vector: first ACT sets the bit, increments start on the 2nd.
        assert_eq!(first, Some(251), "N_M=250 plus the bit-set round");
    }

    #[test]
    fn same_row_id_across_banks_counts_once_per_round() {
        let mut t = Abacus::new(params());
        let mut out = Vec::new();
        // Activate row 7 in 4 different banks repeatedly: one shared entry.
        let mut mits = 0;
        for _round in 0..260u32 {
            for bg in 0..4u8 {
                out.clear();
                t.on_activation(act_at(bg, 0, 7), &mut out);
                mits += out.iter().filter(|x| matches!(x, TrackerAction::MitigateRow(_))).count();
            }
        }
        assert!(mits >= 1, "shared entry must still mitigate");
        assert!(t.overflow_resets == 0);
    }

    #[test]
    fn distinct_rows_overflow_spillover_and_sweep() {
        let p = params();
        let mut t = Abacus::new(p);
        let cap = t.capacity() as u32;
        let mut out = Vec::new();
        let mut sweeps = 0;
        // Sequentially activate far more distinct row IDs than entries,
        // repeatedly, as the paper's attack does.
        let mut row = 0u32;
        'outer: for _ in 0..(cap as u64 * p.nm() as u64 * 2) {
            out.clear();
            t.on_activation(act_at((row % 8) as u8, ((row / 8) % 4) as u8, row % 60_000), &mut out);
            row = row.wrapping_add(1);
            if out.iter().any(|x| matches!(x, TrackerAction::ResetSweep(_))) {
                sweeps += 1;
                break 'outer;
            }
        }
        assert_eq!(sweeps, 1, "spillover overflow must force a channel sweep");
        assert_eq!(t.spillover(), 0, "reset after sweep");
    }

    #[test]
    fn trefw_reset_clears_state() {
        let mut t = Abacus::new(params());
        let mut out = Vec::new();
        for _ in 0..100 {
            t.on_activation(act_at(0, 0, 7), &mut out);
        }
        t.on_refresh_window(0, &mut out);
        assert_eq!(t.spillover(), 0);
        let mut first = None;
        for i in 1..=600u32 {
            out.clear();
            t.on_activation(act_at(0, 0, 7), &mut out);
            if out.iter().any(|x| matches!(x, TrackerAction::MitigateRow(_))) {
                first = Some(i);
                break;
            }
        }
        assert_eq!(first, Some(251), "counts restart after tREFW");
    }
}
