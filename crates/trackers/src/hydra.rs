//! Hydra (Qureshi et al., ISCA 2022): hybrid group/per-row tracking.
//!
//! Three structures (Section III-A of the DAPPER paper):
//!
//! * **GCT** — Group Count Table: one shared counter per 128 rows. Counts
//!   until the group threshold N_GC = 0.8 x N_M, then the group switches to
//!   per-row tracking.
//! * **RCT** — Row Count Table: per-row counters in a reserved DRAM region.
//! * **RCC** — Row Counter Cache: 4K-entry, 32-way cache of RCT entries per
//!   rank with random eviction. An RCC miss costs one DRAM read (fetch) plus
//!   one DRAM write (evict) — the lever the Perf-Attack pulls.
//!
//! Everything resets at each tREFW boundary.

use crate::util::{hash64, meta_addr, RowMap};
use crate::TrackerParams;
use sim_core::addr::Geometry;
use sim_core::registry::{ParamSpec, RegistryError, TrackerSpec};
use sim_core::rng::Xoshiro256;
use sim_core::time::Cycle;
use sim_core::tracker::{Activation, RowHammerTracker, StorageOverhead, TrackerAction};

/// Rows sharing one group counter (the paper's Hydra configuration).
pub const GROUP_SIZE: u32 = 128;
/// RCC entries per rank.
pub const RCC_ENTRIES: usize = 4096;
/// RCC associativity.
pub const RCC_WAYS: usize = 32;

/// Structure sizes for one Hydra instance. [`HydraParams::new`] gives the
/// paper baseline; the registry exposes each field as a tunable parameter
/// for sensitivity sweeps.
#[derive(Debug, Clone, Copy)]
pub struct HydraParams {
    /// Shared construction parameters.
    pub base: TrackerParams,
    /// Rows sharing one group counter.
    pub group_size: u32,
    /// RCC entries per rank.
    pub rcc_entries: usize,
    /// RCC associativity.
    pub rcc_ways: usize,
}

impl HydraParams {
    /// The paper-baseline structure sizes (128-row groups, 4K×32 RCC).
    pub fn new(base: TrackerParams) -> Self {
        Self { base, group_size: GROUP_SIZE, rcc_entries: RCC_ENTRIES, rcc_ways: RCC_WAYS }
    }

    fn validate(&self) -> Result<(), RegistryError> {
        if !self.group_size.is_power_of_two()
            || !self.base.geometry.rows_per_rank().is_multiple_of(self.group_size as u64)
        {
            return Err(RegistryError::invalid(
                "hydra",
                "group_size",
                "must be a power of two dividing the rows per rank",
            ));
        }
        if self.rcc_ways == 0 || !self.rcc_entries.is_multiple_of(self.rcc_ways) {
            return Err(RegistryError::invalid(
                "hydra",
                "rcc_entries",
                format!("must be a nonzero multiple of rcc_ways ({})", self.rcc_ways),
            ));
        }
        Ok(())
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct RccEntry {
    valid: bool,
    row: u64,
    count: u32,
}

#[derive(Debug)]
struct RankState {
    /// Group counters (2M rows / 128 = 16K groups).
    gct: Vec<u32>,
    /// Groups that exceeded N_GC and moved to per-row tracking.
    per_row_mode: Vec<bool>,
    /// The RCC: sets x ways.
    rcc: Vec<RccEntry>,
    /// Ground-truth RCT contents (the DRAM-resident counters): an
    /// open-addressed table — the per-ACT path under attack is RCC-miss
    /// dominated, and the std map's SipHash showed up in profiles.
    rct: RowMap,
}

/// The Hydra tracker for one channel.
#[derive(Debug)]
pub struct Hydra {
    p: TrackerParams,
    group_size: u32,
    rcc_entries: usize,
    rcc_ways: usize,
    ranks: Vec<RankState>,
    rng: Xoshiro256,
    n_gc: u32,
    rcc_sets: usize,
    /// RCC misses observed (introspection for tests/benches).
    pub rcc_misses: u64,
    /// RCC hits observed.
    pub rcc_hits: u64,
}

impl Hydra {
    /// Creates a Hydra instance with the paper's configuration.
    pub fn new(p: TrackerParams) -> Self {
        Self::with_params(HydraParams::new(p)).expect("paper-baseline sizes are valid")
    }

    /// Creates a Hydra instance with explicit structure sizes.
    pub fn with_params(hp: HydraParams) -> Result<Self, RegistryError> {
        hp.validate()?;
        let p = hp.base;
        let groups = (p.geometry.rows_per_rank() / hp.group_size as u64) as usize;
        let ranks = (0..p.geometry.ranks)
            .map(|_| RankState {
                gct: vec![0; groups],
                per_row_mode: vec![false; groups],
                rcc: vec![RccEntry::default(); hp.rcc_entries],
                rct: RowMap::new(),
            })
            .collect();
        let n_gc = (0.8 * p.nm() as f64) as u32;
        Ok(Self {
            p,
            group_size: hp.group_size,
            rcc_entries: hp.rcc_entries,
            rcc_ways: hp.rcc_ways,
            ranks,
            rng: Xoshiro256::seed_from(p.seed ^ 0x48_59_44_52_41),
            n_gc,
            rcc_sets: hp.rcc_entries / hp.rcc_ways,
            rcc_misses: 0,
            rcc_hits: 0,
        })
    }

    /// The group-counter threshold N_GC.
    pub fn group_threshold(&self) -> u32 {
        self.n_gc
    }

    fn rcc_set(&self, row: u64) -> usize {
        (hash64(row, self.p.seed ^ 0x5e7) as usize) % self.rcc_sets
    }

    /// Looks up `row` in a rank's RCC; on miss performs fetch + evict,
    /// emitting the corresponding DRAM traffic. Returns the entry index.
    fn rcc_access(&mut self, rank: usize, row: u64, actions: &mut Vec<TrackerAction>) -> usize {
        let set = self.rcc_set(row);
        let base = set * self.rcc_ways;
        let geom: Geometry = self.p.geometry;
        // Hit?
        for w in 0..self.rcc_ways {
            let e = &self.ranks[rank].rcc[base + w];
            if e.valid && e.row == row {
                self.rcc_hits += 1;
                return base + w;
            }
        }
        self.rcc_misses += 1;
        // Miss: prefer an invalid way, else evict at random (paper config).
        let way = (0..self.rcc_ways)
            .find(|&w| !self.ranks[rank].rcc[base + w].valid)
            .unwrap_or_else(|| self.rng.gen_range(self.rcc_ways as u64) as usize);
        let slot = base + way;
        let victim = self.ranks[rank].rcc[slot];
        if victim.valid {
            // Write the evicted counter back to the RCT in DRAM.
            self.ranks[rank].rct.insert(victim.row, victim.count);
            actions.push(TrackerAction::CounterWrite(meta_addr(
                &geom,
                self.p.channel,
                rank as u8,
                victim.row,
            )));
        }
        // Fetch the requested counter from DRAM.
        let fetched = self.ranks[rank].rct.get(row).unwrap_or(self.n_gc);
        actions.push(TrackerAction::CounterRead(meta_addr(&geom, self.p.channel, rank as u8, row)));
        self.ranks[rank].rcc[slot] = RccEntry { valid: true, row, count: fetched };
        slot
    }
}

impl RowHammerTracker for Hydra {
    fn name(&self) -> &'static str {
        "Hydra"
    }

    fn on_activation(&mut self, act: Activation, actions: &mut Vec<TrackerAction>) {
        let geom = self.p.geometry;
        let rank = act.addr.rank as usize;
        let row = geom.rank_row_index(&act.addr);
        let group = (row / self.group_size as u64) as usize;
        let nm = self.p.nm();

        if !self.ranks[rank].per_row_mode[group] {
            let c = &mut self.ranks[rank].gct[group];
            *c += 1;
            if *c >= self.n_gc {
                self.ranks[rank].per_row_mode[group] = true;
            }
            return;
        }

        // Per-row mode: the counter lives in the RCT, cached in the RCC.
        let slot = self.rcc_access(rank, row, actions);
        let e = &mut self.ranks[rank].rcc[slot];
        e.count += 1;
        if e.count >= nm {
            e.count = 0;
            self.ranks[rank].rct.insert(row, 0);
            actions.push(TrackerAction::MitigateRow(act.addr));
        }
    }

    fn on_refresh_window(&mut self, _cycle: Cycle, _actions: &mut Vec<TrackerAction>) {
        for r in &mut self.ranks {
            r.gct.fill(0);
            r.per_row_mode.fill(false);
            r.rcc.fill(RccEntry::default());
            r.rct.clear();
        }
    }

    fn storage_overhead(&self) -> StorageOverhead {
        // Table III: 56.5 KB per 32 GB channel at the baseline sizes. GCT:
        // 16K groups x 1 B per rank; RCC: entries x ~24.5 bits (21-bit tag +
        // count, packed) per rank.
        StorageOverhead::new(hydra_storage(&self.p, self.group_size, self.rcc_entries), 0)
    }
}

fn hydra_storage(p: &TrackerParams, group_size: u32, rcc_entries: usize) -> u64 {
    let groups = p.geometry.rows_per_rank() / group_size.max(1) as u64;
    let rcc_bytes = rcc_entries as u64 * 49 / 16;
    p.geometry.ranks as u64 * (groups + rcc_bytes)
}

/// Hydra's registry descriptor: key `hydra`, structure sizes exposed as
/// tunable parameters with the paper-baseline defaults.
pub fn spec() -> TrackerSpec {
    TrackerSpec::new("hydra", "Hydra", |p| {
        let mut hp = HydraParams::new(TrackerParams::from_build(p));
        hp.group_size = p.int("group_size") as u32;
        hp.rcc_entries = p.count("rcc_entries");
        hp.rcc_ways = p.count("rcc_ways");
        Ok(Box::new(Hydra::with_params(hp)?))
    })
    .summary("Hydra (ISCA'22): group counters + per-row counter cache over DRAM")
    .param(
        ParamSpec::int("group_size", "rows sharing one group counter", GROUP_SIZE as i64)
            .range(1.0, (1u64 << 20) as f64),
    )
    .param(
        ParamSpec::int("rcc_entries", "row counter cache entries per rank", RCC_ENTRIES as i64)
            .range(1.0, (1u64 << 24) as f64),
    )
    .param(
        ParamSpec::int("rcc_ways", "row counter cache associativity", RCC_WAYS as i64)
            .range(1.0, 4096.0),
    )
    .storage(|p| {
        StorageOverhead::new(
            hydra_storage(
                &TrackerParams::from_build(p),
                p.int("group_size") as u32,
                p.count("rcc_entries"),
            ),
            0,
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::addr::DramAddr;
    use sim_core::req::SourceId;

    fn act(addr: DramAddr, cycle: Cycle) -> Activation {
        Activation { addr, source: SourceId(0), cycle }
    }

    fn params() -> TrackerParams {
        TrackerParams::baseline(500, 0, 42)
    }

    #[test]
    fn group_counting_then_per_row_transition() {
        let mut h = Hydra::new(params());
        let a = DramAddr::new(0, 0, 0, 0, 100, 0);
        let mut out = Vec::new();
        // Below N_GC = 0.8 * 250 = 200: pure group counting, no DRAM traffic.
        for i in 0..h.group_threshold() {
            h.on_activation(act(a, i as Cycle), &mut out);
        }
        assert!(out.is_empty(), "no actions during group mode");
        // Next activation runs in per-row mode: one RCC miss -> fetch.
        h.on_activation(act(a, 1000), &mut out);
        assert!(out.iter().any(|x| matches!(x, TrackerAction::CounterRead(_))));
    }

    #[test]
    fn mitigation_fires_at_nm() {
        let mut h = Hydra::new(params());
        let a = DramAddr::new(0, 0, 0, 0, 100, 0);
        let mut out = Vec::new();
        let mut mitigated = 0;
        for i in 0..600u32 {
            out.clear();
            h.on_activation(act(a, i as Cycle), &mut out);
            mitigated += out.iter().filter(|x| matches!(x, TrackerAction::MitigateRow(_))).count();
        }
        // 600 activations with N_M = 250: per-row counter starts at N_GC
        // (200) on first fetch, so mitigations at ~250 and ~500.
        assert!(mitigated >= 1, "no mitigation in 600 activations");
        assert!(mitigated <= 3);
    }

    #[test]
    fn rcc_set_conflicts_cause_misses() {
        let mut h = Hydra::new(params());
        let mut out = Vec::new();
        // Drive 40 distinct rows of one group... rows in the same group share
        // a GCT counter, so instead pre-warm groups into per-row mode by
        // hammering one row per group.
        let geom = params().geometry;
        let rows: Vec<DramAddr> = (0..40u32)
            .map(|i| {
                // Different groups: row i*GROUP_SIZE within bank 0.
                let idx = (i * GROUP_SIZE) as u64;
                geom.addr_from_rank_row_index(0, 0, idx)
            })
            .collect();
        for r in &rows {
            for i in 0..h.group_threshold() + 1 {
                h.on_activation(act(*r, i as Cycle), &mut out);
            }
        }
        let miss_before = h.rcc_misses;
        assert!(miss_before >= 40, "each per-row transition fetches once");
        // Re-touching all 40 again hits (RCC holds 4K entries).
        out.clear();
        for r in &rows {
            h.on_activation(act(*r, 0), &mut out);
        }
        assert_eq!(h.rcc_misses, miss_before, "working set fits: all hits");
        assert!(h.rcc_hits >= 40);
    }

    #[test]
    fn trefw_reset_clears_everything() {
        let mut h = Hydra::new(params());
        let a = DramAddr::new(0, 0, 0, 0, 100, 0);
        let mut out = Vec::new();
        for i in 0..300u32 {
            h.on_activation(act(a, i as Cycle), &mut out);
        }
        h.on_refresh_window(0, &mut out);
        out.clear();
        // Group mode again: no DRAM traffic on next ACT.
        h.on_activation(act(a, 0), &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn storage_matches_table_three() {
        let h = Hydra::new(params());
        let s = h.storage_overhead();
        assert!((s.sram_kb() - 56.5).abs() < 1.0, "{}", s.sram_kb());
    }
}
