//! PrIDE (Jaleel et al., ISCA 2024): in-DRAM probabilistic FIFO sampling.
//!
//! Each bank samples activations into a small FIFO with probability
//! `32 / N_RH`; queued aggressors are mitigated on the periodic refresh
//! schedule — every bank with a non-empty queue issues `ceil(500 / N_RH)`
//! mitigations per tREFI (PrIDE is an in-DRAM, per-bank scheme riding the
//! refresh cadence). The fixed per-tREFI mitigation budget is what
//! Perf-Attacks and low N_RH stress (Figs. 15/16).

use crate::TrackerParams;
use sim_core::addr::DramAddr;
use sim_core::registry::{ParamSpec, RegistryError, TrackerSpec};
use sim_core::rng::Xoshiro256;
use sim_core::time::Cycle;
use sim_core::tracker::{Activation, RowHammerTracker, StorageOverhead, TrackerAction};
use std::collections::VecDeque;

/// Per-bank FIFO depth.
pub const QUEUE_DEPTH: usize = 4;
/// Sampling numerator: p = SAMPLE_NUMERATOR / N_RH.
pub const SAMPLE_NUMERATOR: f64 = 32.0;

/// Parameters for one PrIDE instance: FIFO depth and the sampling
/// numerator of its probabilistic management policy.
#[derive(Debug, Clone, Copy)]
pub struct PrideParams {
    /// Shared construction parameters.
    pub base: TrackerParams,
    /// Per-bank FIFO depth.
    pub queue_depth: usize,
    /// Sampling numerator: sample probability = numerator / N_RH.
    pub sample_numerator: f64,
}

impl PrideParams {
    /// The paper-baseline sizing (4-deep FIFOs, 32/N_RH sampling).
    pub fn new(base: TrackerParams) -> Self {
        Self { base, queue_depth: QUEUE_DEPTH, sample_numerator: SAMPLE_NUMERATOR }
    }
}

/// The PrIDE tracker for one channel.
#[derive(Debug)]
pub struct Pride {
    prob: f64,
    rng: Xoshiro256,
    queues: Vec<VecDeque<DramAddr>>,
    queue_depth: usize,
    per_trefi: usize,
    /// Sampled aggressors dropped because a queue was full.
    pub overflows: u64,
    /// Mitigations issued.
    pub mitigations: u64,
}

impl Pride {
    /// Creates a PrIDE instance for one channel.
    pub fn new(p: TrackerParams) -> Self {
        Self::with_params(PrideParams::new(p)).expect("paper-baseline sizing is valid")
    }

    /// Creates a PrIDE instance with explicit FIFO/sampling parameters.
    pub fn with_params(pp: PrideParams) -> Result<Self, RegistryError> {
        if pp.queue_depth == 0 {
            return Err(RegistryError::invalid("pride", "queue_depth", "must be nonzero"));
        }
        if pp.sample_numerator <= 0.0 || pp.sample_numerator.is_nan() {
            return Err(RegistryError::invalid("pride", "sample_numerator", "must be positive"));
        }
        let p = pp.base;
        let nbanks = (p.geometry.ranks as u32 * p.geometry.banks_per_rank()) as usize;
        Ok(Self {
            prob: (pp.sample_numerator / p.nrh as f64).min(1.0),
            rng: Xoshiro256::seed_from(p.seed ^ 0x9B1D_E001u64),
            queues: vec![VecDeque::with_capacity(pp.queue_depth); nbanks],
            queue_depth: pp.queue_depth,
            per_trefi: (500usize).div_ceil(p.nrh as usize),
            overflows: 0,
            mitigations: 0,
        })
    }

    /// Sampling probability per activation.
    pub fn probability(&self) -> f64 {
        self.prob
    }

    /// Mitigations per tREFI.
    pub fn budget(&self) -> usize {
        self.per_trefi
    }

    fn bank_index(queues: usize, a: &DramAddr, banks_per_rank: u32, banks_per_group: u8) -> usize {
        let b = a.rank as u32 * banks_per_rank
            + a.bank_group as u32 * banks_per_group as u32
            + a.bank as u32;
        (b as usize) % queues
    }
}

impl RowHammerTracker for Pride {
    fn name(&self) -> &'static str {
        "PrIDE"
    }

    fn on_activation(&mut self, act: Activation, _actions: &mut Vec<TrackerAction>) {
        if !self.rng.gen_bool(self.prob) {
            return;
        }
        let idx = Self::bank_index(self.queues.len(), &act.addr, 32, 4);
        let depth = self.queue_depth;
        let q = &mut self.queues[idx];
        if q.len() >= depth {
            self.overflows += 1;
            q.pop_front();
        }
        q.push_back(act.addr);
    }

    fn on_trefi(&mut self, _cycle: Cycle, actions: &mut Vec<TrackerAction>) {
        // Every bank services its own queue on the refresh cadence,
        // `per_trefi` entries each (in-DRAM, per-bank mitigation).
        for q in &mut self.queues {
            for _ in 0..self.per_trefi {
                match q.pop_front() {
                    Some(addr) => {
                        actions.push(TrackerAction::MitigateRow(addr));
                        self.mitigations += 1;
                    }
                    None => break,
                }
            }
        }
    }

    fn storage_overhead(&self) -> StorageOverhead {
        // In-DRAM queues: 64 banks x depth entries x ~3 B.
        StorageOverhead::new(self.queues.len() as u64 * self.queue_depth as u64 * 3, 0)
    }
}

/// PrIDE's registry descriptor: key `pride`, FIFO depth and sampling
/// numerator exposed as tunable parameters.
pub fn spec() -> TrackerSpec {
    TrackerSpec::new("pride", "PrIDE", |p| {
        let mut pp = PrideParams::new(TrackerParams::from_build(p));
        pp.queue_depth = p.count("queue_depth");
        pp.sample_numerator = p.float("sample_numerator");
        Ok(Box::new(Pride::with_params(pp)?))
    })
    .summary("PrIDE (ISCA'24): in-DRAM probabilistic FIFO sampling per bank")
    .param(
        ParamSpec::int("queue_depth", "per-bank FIFO depth", QUEUE_DEPTH as i64)
            .range(1.0, 65536.0),
    )
    .param(
        ParamSpec::float(
            "sample_numerator",
            "sampling probability = numerator / N_RH",
            SAMPLE_NUMERATOR,
        )
        .range(1e-6, 1e6),
    )
    .storage(|p| {
        let banks = (p.geometry.ranks as u64) * p.geometry.banks_per_rank() as u64;
        StorageOverhead::new(banks * p.count("queue_depth") as u64 * 3, 0)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::req::SourceId;

    fn act(row: u32) -> Activation {
        Activation { addr: DramAddr::new(0, 0, 0, 0, row, 0), source: SourceId(0), cycle: 0 }
    }

    fn params(nrh: u32) -> TrackerParams {
        TrackerParams::baseline(nrh, 0, 21)
    }

    #[test]
    fn budget_scales_with_threshold() {
        assert_eq!(Pride::new(params(500)).budget(), 1);
        assert_eq!(Pride::new(params(250)).budget(), 2);
        assert_eq!(Pride::new(params(125)).budget(), 4);
        assert_eq!(Pride::new(params(1000)).budget(), 1);
    }

    #[test]
    fn sampled_rows_get_mitigated_at_trefi() {
        let mut t = Pride::new(params(500));
        let mut out = Vec::new();
        // Hammer until something is sampled (p = 3.2%).
        for _ in 0..1000 {
            t.on_activation(act(7), &mut out);
        }
        t.on_trefi(0, &mut out);
        assert!(
            out.iter().any(|x| matches!(x, TrackerAction::MitigateRow(_))),
            "sampled aggressor must be serviced"
        );
        assert!(t.mitigations >= 1);
    }

    #[test]
    fn budget_caps_mitigations_per_trefi() {
        let mut t = Pride::new(params(500));
        let mut out = Vec::new();
        // All samples land in bank 0's queue (capacity 4).
        for row in 0..10_000u32 {
            t.on_activation(act(row), &mut out);
        }
        out.clear();
        t.on_trefi(0, &mut out);
        assert_eq!(out.len(), 1, "N_RH=500: one mitigation per bank per tREFI");
    }

    #[test]
    fn queue_overflow_drops_oldest() {
        let mut t = Pride::new(params(125)); // p = 12.8%: samples fast
        let mut out = Vec::new();
        for row in 0..2000u32 {
            t.on_activation(act(row), &mut out);
        }
        assert!(t.overflows > 0, "tiny FIFO must overflow under hammering");
    }
}
