//! Baseline RowHammer trackers.
//!
//! Faithful (behaviour-level) reimplementations of the state-of-the-art
//! host-side mitigations the paper evaluates and attacks:
//!
//! | Module | Scheme | Shared structure a Perf-Attack exploits |
//! |---|---|---|
//! | [`hydra`] | Hydra (ISCA'22) | Row Counter Cache misses → DRAM counter traffic |
//! | [`start`] | START (HPCA'24) | reserved-LLC counter region misses → DRAM traffic |
//! | [`comet`] | CoMeT (HPCA'24) | Recent Aggressor Table thrash → full-rank reset sweeps |
//! | [`abacus`] | ABACuS (Security'24) | Misra-Gries spillover overflow → channel reset sweeps |
//! | [`blockhammer`] | BlockHammer (HPCA'21) | Bloom-filter false positives → benign throttling |
//! | [`para`] | PARA (ISCA'14) | stateless; frequent mitigations at low N_RH |
//! | [`pride`] | PrIDE (ISCA'24) | per-tREFI mitigation budget |
//! | [`prac`] | PRAC/QPRAC (DDR5 spec / HPCA'25) | per-ACT counter read-modify-write tax |
//!
//! Every tracker implements [`sim_core::tracker::RowHammerTracker`] and
//! covers **one memory channel**.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod abacus;
pub mod blockhammer;
pub mod comet;
pub mod hydra;
pub mod para;
pub mod prac;
pub mod pride;
pub mod start;
pub(crate) mod util;

pub use abacus::{Abacus, AbacusParams};
pub use blockhammer::{BlockHammer, BlockHammerParams};
pub use comet::{Comet, CometParams};
pub use hydra::{Hydra, HydraParams};
pub use para::{Para, ParaParams};
pub use prac::{Prac, PracParams};
pub use pride::{Pride, PrideParams};
pub use start::{Start, StartParams};

use sim_core::addr::Geometry;

/// Construction parameters shared by every tracker.
#[derive(Debug, Clone, Copy)]
pub struct TrackerParams {
    /// RowHammer threshold.
    pub nrh: u32,
    /// DRAM organisation.
    pub geometry: Geometry,
    /// The channel this instance covers.
    pub channel: u8,
    /// Seed for all randomised internals.
    pub seed: u64,
}

impl TrackerParams {
    /// Parameters for the paper baseline at a given threshold.
    pub fn baseline(nrh: u32, channel: u8, seed: u64) -> Self {
        Self { nrh, geometry: Geometry::paper_baseline(), channel, seed }
    }

    /// The system-level subset of a registry build request (the tunable
    /// per-tracker values ride separately in the registry's parameter map).
    pub fn from_build(p: &sim_core::registry::TrackerParams) -> Self {
        Self { nrh: p.nrh, geometry: p.geometry, channel: p.channel, seed: p.seed }
    }

    /// Mitigation threshold N_M = N_RH / 2.
    pub fn nm(&self) -> u32 {
        self.nrh / 2
    }
}

/// Registers every baseline tracker in this crate — Hydra, START, CoMeT,
/// ABACuS, BlockHammer, PARA, PrIDE, PRAC — into `reg`, in the order the
/// paper's tables list them. The DAPPER variants register from their home
/// crate (`dapper::register_builtin`), and the insecure baseline from
/// [`sim_core::registry::null_spec`].
pub fn register_builtin(
    reg: &mut sim_core::registry::TrackerRegistry,
) -> Result<(), sim_core::registry::RegistryError> {
    reg.register(hydra::spec())?;
    reg.register(start::spec())?;
    reg.register(comet::spec())?;
    reg.register(abacus::spec())?;
    reg.register(blockhammer::spec())?;
    reg.register(para::spec())?;
    reg.register(pride::spec())?;
    reg.register(prac::spec())
}
