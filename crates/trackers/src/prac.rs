//! PRAC / QPRAC (JEDEC DDR5 PRAC; Woo et al., HPCA 2025): per-row counters.
//!
//! Every DRAM row keeps an exact activation counter updated by a
//! read-modify-write on each ACT — precise, so Perf-Attacks cannot force
//! spurious mitigations, but the RMW lengthens every row cycle. We model the
//! timing tax as a fixed per-ACT delay (~10 ns, the tRP+tRAS extension the
//! QPRAC paper reports costing ~7% on benign workloads) and service
//! Alert-Back-Off mitigations from a priority queue at each tREFI.

use crate::TrackerParams;
use sim_core::addr::DramAddr;
use sim_core::registry::{ParamSpec, RegistryError, TrackerSpec};
use sim_core::req::SourceId;
use sim_core::time::{ns_to_cycles, Cycle};
use sim_core::tracker::{Activation, RowHammerTracker, StorageOverhead, TrackerAction};
use std::collections::{HashMap, VecDeque};

/// Per-ACT read-modify-write tax in nanoseconds (the tRAS/tRP extension
/// PRAC's counter update adds to every row cycle).
pub const RMW_TAX_NS: f64 = 5.0;
/// Pending mitigations serviced per tREFI (Alert Back-Off batch).
pub const ABO_BATCH: usize = 8;

/// Parameters for one PRAC instance: the timing tax and the ABO service
/// rate (PRAC's cost is all timing, not tracking error).
#[derive(Debug, Clone, Copy)]
pub struct PracParams {
    /// Shared construction parameters.
    pub base: TrackerParams,
    /// Per-ACT read-modify-write tax, nanoseconds.
    pub rmw_tax_ns: f64,
    /// Pending mitigations serviced per tREFI.
    pub abo_batch: usize,
}

impl PracParams {
    /// The paper-matched defaults (5 ns tax, 8 mitigations per tREFI).
    pub fn new(base: TrackerParams) -> Self {
        Self { base, rmw_tax_ns: RMW_TAX_NS, abo_batch: ABO_BATCH }
    }
}

/// The PRAC tracker for one channel.
#[derive(Debug)]
pub struct Prac {
    p: TrackerParams,
    counts: HashMap<u64, u32>,
    /// Rows that crossed the back-off threshold, awaiting ABO service
    /// (FIFO: the oldest alert is the most urgent).
    pending: VecDeque<DramAddr>,
    tax: Cycle,
    abo_batch: usize,
    threshold: u32,
    /// ABO alerts raised.
    pub alerts: u64,
}

impl Prac {
    /// Creates a PRAC instance for one channel.
    pub fn new(p: TrackerParams) -> Self {
        Self::with_params(PracParams::new(p)).expect("paper-baseline timing is valid")
    }

    /// Creates a PRAC instance with explicit timing parameters.
    pub fn with_params(pp: PracParams) -> Result<Self, RegistryError> {
        if pp.rmw_tax_ns < 0.0 {
            return Err(RegistryError::invalid("prac", "rmw_tax_ns", "must be non-negative"));
        }
        if pp.abo_batch == 0 {
            return Err(RegistryError::invalid("prac", "abo_batch", "must be nonzero"));
        }
        let p = pp.base;
        Ok(Self {
            p,
            counts: HashMap::new(),
            pending: VecDeque::new(),
            tax: ns_to_cycles(pp.rmw_tax_ns),
            abo_batch: pp.abo_batch,
            threshold: p.nm().max(1),
            alerts: 0,
        })
    }

    /// The back-off threshold.
    pub fn threshold(&self) -> u32 {
        self.threshold
    }

    fn key(&self, a: &DramAddr) -> u64 {
        a.rank as u64 * self.p.geometry.rows_per_rank() + self.p.geometry.rank_row_index(a)
    }
}

impl RowHammerTracker for Prac {
    fn name(&self) -> &'static str {
        "PRAC"
    }

    fn on_activation(&mut self, act: Activation, _actions: &mut Vec<TrackerAction>) {
        let key = self.key(&act.addr);
        let c = self.counts.entry(key).or_insert(0);
        *c += 1;
        if *c >= self.threshold {
            *c = 0;
            self.alerts += 1;
            self.pending.push_back(act.addr);
        }
    }

    fn on_trefi(&mut self, _cycle: Cycle, actions: &mut Vec<TrackerAction>) {
        // ABO: service a batch of pending mitigations per tREFI, oldest
        // first.
        for _ in 0..self.abo_batch {
            match self.pending.pop_front() {
                Some(addr) => actions.push(TrackerAction::MitigateRow(addr)),
                None => break,
            }
        }
    }

    fn activation_delay(&mut self, _a: &DramAddr, _s: SourceId, _now: Cycle) -> Cycle {
        // Alert Back-Off: while alerts queue up, the channel backs off so
        // the in-DRAM mitigations can land before any aggressor gains
        // another N_M activations. The delay escalates with queue depth.
        let backlog = self.pending.len() as Cycle;
        if backlog > 4 {
            self.tax * 4 * backlog
        } else {
            self.tax
        }
    }

    fn on_refresh_window(&mut self, _cycle: Cycle, _actions: &mut Vec<TrackerAction>) {
        self.counts.clear();
    }

    fn storage_overhead(&self) -> StorageOverhead {
        // Counters live in DRAM; the controller keeps only the ABO queue.
        StorageOverhead::new(1024, 0)
    }
}

/// PRAC's registry descriptor: key `prac` (alias `qprac`), the per-ACT
/// timing tax and ABO service batch exposed as tunable parameters.
pub fn spec() -> TrackerSpec {
    TrackerSpec::new("prac", "PRAC", |p| {
        let mut pp = PracParams::new(TrackerParams::from_build(p));
        pp.rmw_tax_ns = p.float("rmw_tax_ns");
        pp.abo_batch = p.count("abo_batch");
        Ok(Box::new(Prac::with_params(pp)?))
    })
    .alias("qprac")
    .summary("PRAC/QPRAC (HPCA'25): exact in-DRAM counters, per-ACT timing tax")
    .param(
        ParamSpec::float("rmw_tax_ns", "per-ACT read-modify-write tax, ns", RMW_TAX_NS)
            .range(0.0, 1000.0),
    )
    .param(
        ParamSpec::int("abo_batch", "mitigations serviced per tREFI", ABO_BATCH as i64)
            .range(1.0, 65536.0),
    )
    .storage(|_| StorageOverhead::new(1024, 0))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn act(row: u32) -> Activation {
        Activation { addr: DramAddr::new(0, 0, 0, 0, row, 0), source: SourceId(0), cycle: 0 }
    }

    fn params() -> TrackerParams {
        TrackerParams::baseline(500, 0, 17)
    }

    #[test]
    fn every_act_pays_the_rmw_tax() {
        let mut t = Prac::new(params());
        let d = t.activation_delay(&DramAddr::default(), SourceId(0), 0);
        assert_eq!(d, ns_to_cycles(RMW_TAX_NS));
    }

    #[test]
    fn alert_raised_exactly_at_threshold() {
        let mut t = Prac::new(params());
        let mut out = Vec::new();
        for _ in 0..t.threshold() {
            t.on_activation(act(5), &mut out);
        }
        assert_eq!(t.alerts, 1);
        // Serviced at the next tREFI.
        t.on_trefi(0, &mut out);
        assert!(out.iter().any(|x| matches!(x, TrackerAction::MitigateRow(_))));
    }

    #[test]
    fn precise_tracking_ignores_spread_traffic() {
        let mut t = Prac::new(params());
        let mut out = Vec::new();
        for row in 0..10_000u32 {
            for _ in 0..10 {
                t.on_activation(act(row), &mut out);
            }
        }
        t.on_trefi(0, &mut out);
        assert_eq!(t.alerts, 0, "10 activations per row never alerts");
        assert!(out.is_empty());
    }

    #[test]
    fn backlog_escalates_delay() {
        let mut t = Prac::new(params());
        let mut out = Vec::new();
        for row in 0..10u32 {
            for _ in 0..t.threshold() {
                t.on_activation(act(row), &mut out);
            }
        }
        assert!(t.pending.len() > 4);
        let d = t.activation_delay(&DramAddr::default(), SourceId(0), 0);
        assert!(d >= ns_to_cycles(RMW_TAX_NS) * 4 * 5, "escalated delay {d}");
    }

    #[test]
    fn counts_reset_at_trefw() {
        let mut t = Prac::new(params());
        let mut out = Vec::new();
        for _ in 0..t.threshold() - 1 {
            t.on_activation(act(5), &mut out);
        }
        t.on_refresh_window(0, &mut out);
        for _ in 0..t.threshold() - 1 {
            t.on_activation(act(5), &mut out);
        }
        assert_eq!(t.alerts, 0);
    }
}
