//! CoMeT (Bostanci et al., HPCA 2024): Count-Min-Sketch row tracking.
//!
//! Per-bank Counter Tables (CT) of four hash functions x 512 counters with
//! conservative update; mitigation threshold N_RH / 4. Because CMS counters
//! are shared they cannot be reset after a mitigation, so recently mitigated
//! rows move to the **Recent Aggressor Table (RAT)** — 128 entries with
//! exact, resettable counters. The structures are cleared every tREFW / 3.
//!
//! The Perf-Attack lever (Section III-B): activating more distinct
//! aggressors than the RAT holds forces counter overestimation and early
//! resets; when the RAT miss rate over a 256-access history exceeds 25%,
//! CoMeT resets by refreshing all rows in the rank — a multi-millisecond
//! stall.

use crate::util::hash64;
use crate::TrackerParams;
use sim_core::registry::{ParamSpec, RegistryError, TrackerSpec};
use sim_core::time::Cycle;
use sim_core::tracker::{Activation, ResetScope, RowHammerTracker, StorageOverhead, TrackerAction};

/// Hash functions in the sketch.
pub const CMS_HASHES: usize = 4;
/// Counters per hash function (per bank).
pub const CMS_WIDTH: usize = 512;
/// RAT capacity (per rank).
pub const RAT_ENTRIES: usize = 128;
/// Sliding miss-history length.
pub const MISS_HISTORY: usize = 256;
/// Early reset when RAT miss rate exceeds this fraction of the history.
pub const MISS_RATE_RESET: f64 = 0.25;

/// Structure sizes for one CoMeT instance. [`CometParams::new`] gives the
/// paper baseline; the registry exposes each field for sensitivity sweeps
/// (the RAT — the paper's "CAT" of recently mitigated aggressors — is the
/// structure the Perf-Attack thrashes).
#[derive(Debug, Clone, Copy)]
pub struct CometParams {
    /// Shared construction parameters.
    pub base: TrackerParams,
    /// Counters per hash function, per bank.
    pub cms_width: usize,
    /// Recent Aggressor Table capacity per rank.
    pub rat_entries: usize,
    /// Sliding RAT-outcome history length.
    pub miss_history: usize,
    /// Early reset when the miss rate exceeds this fraction of the history.
    pub miss_rate_reset: f64,
}

impl CometParams {
    /// The paper-baseline sizes (4x512 CMS, 128-entry RAT, 256-deep
    /// history, 25% reset rate).
    pub fn new(base: TrackerParams) -> Self {
        Self {
            base,
            cms_width: CMS_WIDTH,
            rat_entries: RAT_ENTRIES,
            miss_history: MISS_HISTORY,
            miss_rate_reset: MISS_RATE_RESET,
        }
    }

    fn validate(&self) -> Result<(), RegistryError> {
        for (key, v) in [
            ("cms_width", self.cms_width),
            ("rat_entries", self.rat_entries),
            ("miss_history", self.miss_history),
        ] {
            if v == 0 {
                return Err(RegistryError::invalid("comet", key, "must be nonzero"));
            }
        }
        Ok(())
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct RatEntry {
    valid: bool,
    row: u64,
    count: u32,
    lru: u64,
}

#[derive(Debug)]
struct RankState {
    /// CMS counters: banks x hashes x width.
    cms: Vec<u16>,
    rat: Vec<RatEntry>,
    /// Ring buffer of recent RAT outcomes (true = miss among mitigated rows).
    history: Vec<bool>,
    hist_idx: usize,
    hist_filled: bool,
    /// Running count of misses in `history` (avoids a full ring scan per
    /// mitigation event).
    hist_misses: usize,
}

/// The CoMeT tracker for one channel.
#[derive(Debug)]
pub struct Comet {
    p: TrackerParams,
    cms_width: usize,
    miss_history: usize,
    miss_rate_reset: f64,
    ranks: Vec<RankState>,
    tick: u64,
    threshold: u32,
    next_periodic_reset: Cycle,
    /// Early resets triggered by RAT thrash (introspection).
    pub early_resets: u64,
}

impl Comet {
    /// Creates a CoMeT instance with the paper's configuration.
    pub fn new(p: TrackerParams) -> Self {
        Self::with_params(CometParams::new(p)).expect("paper-baseline sizes are valid")
    }

    /// Creates a CoMeT instance with explicit structure sizes.
    pub fn with_params(cp: CometParams) -> Result<Self, RegistryError> {
        cp.validate()?;
        let p = cp.base;
        let banks = p.geometry.banks_per_rank() as usize;
        let ranks = (0..p.geometry.ranks)
            .map(|_| RankState {
                cms: vec![0; banks * CMS_HASHES * cp.cms_width],
                rat: vec![RatEntry::default(); cp.rat_entries],
                history: vec![false; cp.miss_history],
                hist_idx: 0,
                hist_filled: false,
                hist_misses: 0,
            })
            .collect();
        Ok(Self {
            p,
            cms_width: cp.cms_width,
            miss_history: cp.miss_history,
            miss_rate_reset: cp.miss_rate_reset,
            ranks,
            tick: 0,
            threshold: (p.nrh / 4).max(1),
            next_periodic_reset: 0,
            early_resets: 0,
        })
    }

    /// The CMS mitigation threshold (N_RH / 4).
    pub fn threshold(&self) -> u32 {
        self.threshold
    }

    fn clear_rank(r: &mut RankState) {
        r.cms.fill(0);
        r.rat.fill(RatEntry::default());
        r.history.fill(false);
        r.hist_idx = 0;
        r.hist_filled = false;
        r.hist_misses = 0;
    }

    fn record_history(&mut self, rank: usize, miss: bool) -> bool {
        let r = &mut self.ranks[rank];
        r.hist_misses += miss as usize;
        r.hist_misses -= r.history[r.hist_idx] as usize;
        r.history[r.hist_idx] = miss;
        r.hist_idx = (r.hist_idx + 1) % self.miss_history;
        if r.hist_idx == 0 {
            r.hist_filled = true;
        }
        if !r.hist_filled {
            return false;
        }
        r.hist_misses as f64 / self.miss_history as f64 > self.miss_rate_reset
    }
}

impl RowHammerTracker for Comet {
    fn name(&self) -> &'static str {
        "CoMeT"
    }

    fn on_activation(&mut self, act: Activation, actions: &mut Vec<TrackerAction>) {
        self.tick += 1;
        let geom = self.p.geometry;
        let rank = act.addr.rank as usize;
        let bank = geom.bank_in_rank(&act.addr) as usize;
        let row = geom.rank_row_index(&act.addr);

        // RAT first: exact resettable counts for recently mitigated rows.
        let mut rat_hit = false;
        {
            let r = &mut self.ranks[rank];
            for e in r.rat.iter_mut() {
                if e.valid && e.row == row {
                    e.count += 1;
                    e.lru = self.tick;
                    rat_hit = true;
                    if e.count >= self.threshold {
                        e.count = 0;
                        actions.push(TrackerAction::MitigateRow(act.addr));
                    }
                    break;
                }
            }
        }
        if rat_hit {
            return;
        }

        // CMS conservative update. One hash call feeds all four lanes
        // (rotations of the mixed word, reduced per lane): the 4x SipHash
        // of the naive formulation dominated the per-ACT budget, and lane
        // independence of a well-mixed word is ample for a sketch.
        let mut est = u16::MAX;
        let base = bank * CMS_HASHES * self.cms_width;
        let mut idxs = [0usize; CMS_HASHES];
        let mixed = hash64(row, self.p.seed);
        for (h, idx) in idxs.iter_mut().enumerate() {
            *idx = base
                + h * self.cms_width
                + (mixed.rotate_left(17 * h as u32) as usize) % self.cms_width;
            est = est.min(self.ranks[rank].cms[*idx]);
        }
        let newv = est.saturating_add(1);
        for &i in &idxs {
            let c = &mut self.ranks[rank].cms[i];
            if *c < newv {
                *c = newv;
            }
        }

        if newv as u32 >= self.threshold {
            // Mitigate and move the row into the RAT for exact tracking.
            actions.push(TrackerAction::MitigateRow(act.addr));
            let (slot, evicting) = {
                let r = &self.ranks[rank];
                match r.rat.iter().position(|e| !e.valid) {
                    Some(i) => (i, false),
                    None => {
                        let i = r
                            .rat
                            .iter()
                            .enumerate()
                            .min_by_key(|(_, e)| e.lru)
                            .map(|(i, _)| i)
                            .expect("RAT nonempty");
                        (i, true)
                    }
                }
            };
            self.ranks[rank].rat[slot] = RatEntry { valid: true, row, count: 0, lru: self.tick };
            // A full RAT evicting a live entry is the thrash signal.
            if self.record_history(rank, evicting) {
                self.early_resets += 1;
                Self::clear_rank(&mut self.ranks[rank]);
                actions.push(TrackerAction::ResetSweep(ResetScope::Rank {
                    channel: self.p.channel,
                    rank: rank as u8,
                }));
            }
        }
    }

    fn on_trefi(&mut self, cycle: Cycle, _actions: &mut Vec<TrackerAction>) {
        // Periodic structure reset every tREFW/3. The paper pairs this with
        // a full refresh; we clear the structures only (the co-scheduled
        // auto-refresh covers the rows), keeping benign overhead realistic,
        // and reserve full sweeps for attack-triggered early resets.
        if cycle >= self.next_periodic_reset {
            for r in &mut self.ranks {
                Self::clear_rank(r);
            }
            // tREFW/3 in cycles: 8K REFs per window / 3 ~ every 2730 tREFI.
            self.next_periodic_reset = cycle + 34_133_333;
        }
    }

    fn storage_overhead(&self) -> StorageOverhead {
        // Table III: 112 KB SRAM (CMS) + 23 KB CAM (RAT) per 32 GB at the
        // baseline sizes; both scale linearly with their structures.
        let (sram, cam) = comet_storage(&self.p, self.cms_width, self.ranks[0].rat.len());
        StorageOverhead::new(sram, cam)
    }
}

fn comet_storage(p: &TrackerParams, cms_width: usize, rat_entries: usize) -> (u64, u64) {
    let sram = 112 * 1024 * cms_width as u64 / CMS_WIDTH as u64;
    let cam = 23 * 1024 * rat_entries as u64 / RAT_ENTRIES as u64;
    let _ = p;
    (sram, cam)
}

/// CoMeT's registry descriptor: key `comet`, sketch width and RAT (CAT)
/// capacity exposed as tunable parameters with paper-baseline defaults.
pub fn spec() -> TrackerSpec {
    TrackerSpec::new("comet", "CoMeT", |p| {
        let mut cp = CometParams::new(TrackerParams::from_build(p));
        cp.cms_width = p.count("cms_width");
        cp.rat_entries = p.count("rat_entries");
        cp.miss_history = p.count("miss_history");
        cp.miss_rate_reset = p.float("miss_rate_reset");
        Ok(Box::new(Comet::with_params(cp)?))
    })
    .alias("cat")
    .summary("CoMeT (HPCA'24): count-min-sketch tracking + recent aggressor table")
    .param(
        ParamSpec::int("cms_width", "counters per hash function per bank", CMS_WIDTH as i64)
            .range(1.0, (1u64 << 20) as f64),
    )
    .param(
        ParamSpec::int("rat_entries", "recent aggressor table (CAT) entries", RAT_ENTRIES as i64)
            .range(1.0, (1u64 << 20) as f64),
    )
    .param(
        ParamSpec::int("miss_history", "sliding RAT-outcome history length", MISS_HISTORY as i64)
            .range(1.0, (1u64 << 20) as f64),
    )
    .param(
        ParamSpec::float(
            "miss_rate_reset",
            "early-reset miss-rate threshold over the history",
            MISS_RATE_RESET,
        )
        .range(0.0, 1.0),
    )
    .storage(|p| {
        let (sram, cam) = comet_storage(
            &TrackerParams::from_build(p),
            p.count("cms_width"),
            p.count("rat_entries"),
        );
        StorageOverhead::new(sram, cam)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::addr::DramAddr;
    use sim_core::req::SourceId;

    fn act(addr: DramAddr) -> Activation {
        Activation { addr, source: SourceId(0), cycle: 0 }
    }

    fn params() -> TrackerParams {
        TrackerParams::baseline(500, 0, 3)
    }

    #[test]
    fn single_aggressor_mitigated_at_quarter_threshold() {
        let mut c = Comet::new(params());
        let a = DramAddr::new(0, 0, 0, 0, 42, 0);
        let mut out = Vec::new();
        let mut first_mit = None;
        for i in 1..=200u32 {
            out.clear();
            c.on_activation(act(a), &mut out);
            if out.iter().any(|x| matches!(x, TrackerAction::MitigateRow(_))) {
                first_mit = Some(i);
                break;
            }
        }
        assert_eq!(first_mit, Some(c.threshold()), "mitigate at N_RH/4 = 125");
    }

    #[test]
    fn rat_gives_exact_recount_after_mitigation() {
        let mut c = Comet::new(params());
        let a = DramAddr::new(0, 0, 0, 0, 42, 0);
        let mut out = Vec::new();
        let mut mits = 0;
        for _ in 0..(c.threshold() * 3) {
            out.clear();
            c.on_activation(act(a), &mut out);
            mits += out.iter().filter(|x| matches!(x, TrackerAction::MitigateRow(_))).count();
        }
        // 375 ACTs, threshold 125: mitigations at 125 (CMS), 250, 375 (RAT).
        assert_eq!(mits, 3);
    }

    #[test]
    fn rat_thrash_triggers_early_reset_sweep() {
        let mut c = Comet::new(params());
        let geom = params().geometry;
        let mut out = Vec::new();
        // 192 aggressors > 128 RAT entries (the paper's attack).
        let aggressors: Vec<DramAddr> =
            (0..192u64).map(|i| geom.addr_from_rank_row_index(0, 0, i * 64)).collect();
        let mut sweeps = 0;
        for _round in 0..c.threshold() * 4 {
            for a in &aggressors {
                out.clear();
                c.on_activation(act(*a), &mut out);
                sweeps += out.iter().filter(|x| matches!(x, TrackerAction::ResetSweep(_))).count();
            }
            if sweeps > 0 {
                break;
            }
        }
        assert!(sweeps > 0, "RAT thrash must trigger an early reset");
        assert!(c.early_resets > 0);
    }

    #[test]
    fn benign_spread_traffic_never_resets() {
        let mut c = Comet::new(params());
        let geom = params().geometry;
        let mut out = Vec::new();
        // 10K distinct rows touched a handful of times: far below threshold.
        for i in 0..10_000u64 {
            let a = geom.addr_from_rank_row_index(0, 0, (i * 211) % geom.rows_per_rank());
            for _ in 0..3 {
                c.on_activation(act(a), &mut out);
            }
        }
        assert!(out.iter().all(|x| !matches!(x, TrackerAction::ResetSweep(_))));
        assert_eq!(c.early_resets, 0);
    }

    #[test]
    fn periodic_reset_clears_counts() {
        let mut c = Comet::new(params());
        let a = DramAddr::new(0, 0, 0, 0, 42, 0);
        let mut out = Vec::new();
        for _ in 0..100 {
            c.on_activation(act(a), &mut out);
        }
        // Force the periodic reset.
        c.on_trefi(100_000_000, &mut out);
        out.clear();
        for _ in 0..100 {
            c.on_activation(act(a), &mut out);
        }
        assert!(
            !out.iter().any(|x| matches!(x, TrackerAction::MitigateRow(_))),
            "counts must restart after periodic reset"
        );
    }
}
