//! START (Saxena & Qureshi, HPCA 2024): RowHammer counters in the LLC.
//!
//! START dynamically allocates per-row activation counters in a reserved
//! half of the LLC. In the paper's configuration the system needs 8M
//! counters but the reserved region holds only 4M, so the region acts as a
//! cache over a DRAM-resident counter table: region misses cost a DRAM read
//! plus a writeback — the attack surface (Section III-B).
//!
//! This tracker models the reserved region internally (the demand-side
//! capacity loss is modelled by the simulator setting
//! `LlcConfig::reserved_ways`). Counters are grouped 64 per cache line, as
//! in the paper (1 B per counter).

use crate::util::{hash64, meta_addr};
use crate::TrackerParams;
use sim_core::registry::{ParamSpec, RegistryError, TrackerSpec};
use sim_core::time::Cycle;
use sim_core::tracker::{Activation, RowHammerTracker, StorageOverhead, TrackerAction};
use std::collections::HashMap;

/// Counters per 64-byte LLC line.
pub const COUNTERS_PER_LINE: u64 = 64;
/// Reserved-region size in cache lines (paper: 2 MB per channel = 32K).
pub const REGION_LINES: usize = 32 * 1024;

/// Parameters for one START instance: the reserved-LLC counter region size
/// (the structure the Perf-Attack overflows).
#[derive(Debug, Clone, Copy)]
pub struct StartParams {
    /// Shared construction parameters.
    pub base: TrackerParams,
    /// Reserved-region size in 64-byte cache lines (16-way sets).
    pub region_lines: usize,
}

impl StartParams {
    /// The paper-baseline region (2 MB per channel).
    pub fn new(base: TrackerParams) -> Self {
        Self { base, region_lines: REGION_LINES }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct LineEntry {
    valid: bool,
    line: u64,
    lru: u64,
}

/// The START tracker for one channel.
#[derive(Debug)]
pub struct Start {
    p: TrackerParams,
    /// Reserved-region line cache: sets x ways over counter lines.
    tags: Vec<LineEntry>,
    sets: usize,
    ways: usize,
    /// Per-row counts for lines currently cached (line -> 64 counters).
    counts: HashMap<u64, [u16; COUNTERS_PER_LINE as usize]>,
    /// DRAM-resident spill of evicted lines.
    spilled: HashMap<u64, [u16; COUNTERS_PER_LINE as usize]>,
    tick: u64,
    /// Reserved-region misses (each costs DRAM traffic).
    pub region_misses: u64,
    /// Reserved-region hits.
    pub region_hits: u64,
}

impl Start {
    /// Creates a START instance. The reserved region per channel is half of
    /// the paper's 8 MB LLC divided across channels: 2 MB = 32K lines.
    pub fn new(p: TrackerParams) -> Self {
        Self::with_region_lines(p, REGION_LINES)
    }

    /// Creates a START instance from validated parameters.
    pub fn with_params(sp: StartParams) -> Result<Self, RegistryError> {
        if sp.region_lines == 0 || !sp.region_lines.is_multiple_of(16) {
            return Err(RegistryError::invalid(
                "start",
                "region_lines",
                "must be a nonzero multiple of 16 (16-way sets)",
            ));
        }
        Ok(Self::with_region_lines(sp.base, sp.region_lines))
    }

    /// Creates a START instance with an explicit reserved-region size in
    /// cache lines (for the Fig. 5 LLC sweep).
    ///
    /// # Panics
    ///
    /// Panics if `lines` is not a multiple of 16.
    pub fn with_region_lines(p: TrackerParams, lines: usize) -> Self {
        assert!(lines.is_multiple_of(16), "region must divide into 16-way sets");
        let ways = 16;
        let sets = lines / ways;
        Self {
            p,
            tags: vec![LineEntry::default(); lines],
            sets,
            ways,
            counts: HashMap::new(),
            spilled: HashMap::new(),
            tick: 0,
            region_misses: 0,
            region_hits: 0,
        }
    }

    /// Total rows tracked per channel.
    fn rows_per_channel(&self) -> u64 {
        self.p.geometry.rows_per_channel()
    }
}

impl RowHammerTracker for Start {
    fn name(&self) -> &'static str {
        "START"
    }

    fn on_activation(&mut self, act: Activation, actions: &mut Vec<TrackerAction>) {
        self.tick += 1;
        let geom = self.p.geometry;
        let row_global =
            act.addr.rank as u64 * geom.rows_per_rank() + geom.rank_row_index(&act.addr);
        debug_assert!(row_global < self.rows_per_channel());
        let line = row_global / COUNTERS_PER_LINE;
        let off = (row_global % COUNTERS_PER_LINE) as usize;
        let set = (hash64(line, self.p.seed ^ 0x57A7) as usize) % self.sets;
        let base = set * self.ways;

        // Look up the counter line in the reserved region.
        let mut slot = None;
        for w in 0..self.ways {
            let e = &self.tags[base + w];
            if e.valid && e.line == line {
                slot = Some(base + w);
                break;
            }
        }
        let slot = match slot {
            Some(s) => {
                self.region_hits += 1;
                s
            }
            None => {
                self.region_misses += 1;
                // Fetch from DRAM; evict LRU line (writeback).
                let s = (0..self.ways)
                    .map(|w| base + w)
                    .min_by_key(|&i| if self.tags[i].valid { self.tags[i].lru } else { 0 })
                    .expect("nonempty set");
                let victim = self.tags[s];
                if victim.valid {
                    if let Some(c) = self.counts.remove(&victim.line) {
                        self.spilled.insert(victim.line, c);
                    }
                    actions.push(TrackerAction::CounterWrite(meta_addr(
                        &geom,
                        self.p.channel,
                        (victim.line % geom.ranks as u64) as u8,
                        victim.line,
                    )));
                }
                actions.push(TrackerAction::CounterRead(meta_addr(
                    &geom,
                    self.p.channel,
                    act.addr.rank,
                    line,
                )));
                let restored = self.spilled.remove(&line).unwrap_or([0; 64]);
                self.counts.insert(line, restored);
                self.tags[s] = LineEntry { valid: true, line, lru: self.tick };
                s
            }
        };
        self.tags[slot].lru = self.tick;

        let counters = self.counts.entry(line).or_insert([0; 64]);
        counters[off] += 1;
        if counters[off] as u32 >= self.p.nm() {
            counters[off] = 0;
            actions.push(TrackerAction::MitigateRow(act.addr));
        }
    }

    fn on_refresh_window(&mut self, _cycle: Cycle, _actions: &mut Vec<TrackerAction>) {
        self.tags.fill(LineEntry::default());
        self.counts.clear();
        self.spilled.clear();
        self.tick = 0;
    }

    fn storage_overhead(&self) -> StorageOverhead {
        // Table III: 4 KB SRAM — START only adds allocation metadata; the
        // counters live in the (reserved) LLC.
        StorageOverhead::new(4 * 1024, 0)
    }
}

/// START's registry descriptor: key `start`, reserved-region size exposed
/// as a tunable parameter. Marked as reserving half the LLC — the
/// simulator mirrors the demand-side capacity loss.
pub fn spec() -> TrackerSpec {
    TrackerSpec::new("start", "START", |p| {
        let mut sp = StartParams::new(TrackerParams::from_build(p));
        sp.region_lines = p.count("region_lines");
        Ok(Box::new(Start::with_params(sp)?))
    })
    .reserves_llc(true)
    .summary("START (HPCA'24): per-row counters cached in a reserved LLC half")
    .param(
        ParamSpec::int(
            "region_lines",
            "reserved counter-region size in 64 B lines (16-way sets)",
            REGION_LINES as i64,
        )
        .range(16.0, (1u64 << 24) as f64),
    )
    .storage(|_| StorageOverhead::new(4 * 1024, 0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::addr::DramAddr;
    use sim_core::req::SourceId;

    fn act(addr: DramAddr) -> Activation {
        Activation { addr, source: SourceId(0), cycle: 0 }
    }

    fn params() -> TrackerParams {
        TrackerParams::baseline(500, 0, 7)
    }

    #[test]
    fn repeated_row_hits_region_after_first_fetch() {
        let mut s = Start::new(params());
        let a = DramAddr::new(0, 0, 0, 0, 500, 0);
        let mut out = Vec::new();
        s.on_activation(act(a), &mut out);
        assert_eq!(s.region_misses, 1);
        assert!(out.iter().any(|x| matches!(x, TrackerAction::CounterRead(_))));
        out.clear();
        for _ in 0..100 {
            s.on_activation(act(a), &mut out);
        }
        assert_eq!(s.region_misses, 1, "hot row stays cached");
        assert!(out.is_empty());
    }

    #[test]
    fn mitigates_at_nm() {
        let mut s = Start::new(params());
        let a = DramAddr::new(0, 0, 0, 0, 500, 0);
        let mut out = Vec::new();
        let mut mits = 0;
        for _ in 0..501 {
            out.clear();
            s.on_activation(act(a), &mut out);
            mits += out.iter().filter(|x| matches!(x, TrackerAction::MitigateRow(_))).count();
        }
        assert_eq!(mits, 2, "N_M=250: mitigations at 250 and 500");
    }

    #[test]
    fn streaming_many_lines_thrashes_region() {
        // Use a tiny region so the test exercises eviction quickly.
        let mut s = Start::with_region_lines(params(), 256);
        let geom = params().geometry;
        let mut out = Vec::new();
        // Touch 64 * 1024 distinct rows = 1024 lines >> 256-line region.
        for i in 0..(64 * 1024u64) {
            let a = geom.addr_from_rank_row_index(0, 0, i * 17 % geom.rows_per_rank());
            s.on_activation(act(a), &mut out);
        }
        assert!(s.region_misses > 700, "streaming should thrash: misses = {}", s.region_misses);
        assert!(out.iter().any(|x| matches!(x, TrackerAction::CounterWrite(_))));
    }

    #[test]
    fn eviction_preserves_counts() {
        let mut s = Start::with_region_lines(params(), 16); // single set
        let geom = params().geometry;
        let mut out = Vec::new();
        let hot = geom.addr_from_rank_row_index(0, 0, 0);
        // 200 activations of the hot row.
        for _ in 0..200 {
            s.on_activation(act(hot), &mut out);
        }
        // Evict it by streaming 64 other lines through the single set.
        for i in 1..=64u64 {
            let a = geom.addr_from_rank_row_index(0, 0, i * COUNTERS_PER_LINE);
            s.on_activation(act(a), &mut out);
        }
        // 50 more activations: counter must resume at 200, mitigating at 250.
        out.clear();
        let mut mits = 0;
        for _ in 0..50 {
            s.on_activation(act(hot), &mut out);
        }
        mits += out.iter().filter(|x| matches!(x, TrackerAction::MitigateRow(_))).count();
        assert_eq!(mits, 1, "spilled count must be restored from DRAM");
    }

    #[test]
    fn trefw_clears_counts() {
        let mut s = Start::new(params());
        let a = DramAddr::new(0, 0, 0, 0, 500, 0);
        let mut out = Vec::new();
        for _ in 0..249 {
            s.on_activation(act(a), &mut out);
        }
        s.on_refresh_window(0, &mut out);
        out.clear();
        for _ in 0..249 {
            s.on_activation(act(a), &mut out);
        }
        assert!(
            !out.iter().any(|x| matches!(x, TrackerAction::MitigateRow(_))),
            "reset counts must not carry across tREFW"
        );
    }
}
