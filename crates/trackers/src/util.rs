//! Internal helpers shared by the trackers.

use sim_core::addr::{DramAddr, Geometry};

/// SplitMix64 finaliser — a cheap keyed hash for counter indexing.
#[inline]
pub fn hash64(x: u64, seed: u64) -> u64 {
    let mut z = x ^ seed.rotate_left(17) ^ 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(seed | 1);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Maps a metadata (counter-storage) index to a DRAM address in the
/// reserved region — the top rows of each bank, striped across banks so
/// counter traffic spreads like Hydra's RCT does.
pub fn meta_addr(geom: &Geometry, channel: u8, rank: u8, idx: u64) -> DramAddr {
    let banks = geom.banks_per_rank() as u64;
    let bank_flat = (idx % banks) as u32;
    let depth = (idx / banks) % 64; // 64 reserved rows per bank
    let row = geom.rows_per_bank - 1 - depth as u32;
    DramAddr {
        channel,
        rank,
        bank_group: (bank_flat / geom.banks_per_group as u32) as u8,
        bank: (bank_flat % geom.banks_per_group as u32) as u8,
        row,
        col: (idx % geom.cols_per_row() as u64) as u16,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_is_deterministic_and_seed_sensitive() {
        assert_eq!(hash64(42, 1), hash64(42, 1));
        assert_ne!(hash64(42, 1), hash64(42, 2));
        assert_ne!(hash64(42, 1), hash64(43, 1));
    }

    #[test]
    fn meta_addr_stays_in_reserved_region() {
        let g = Geometry::paper_baseline();
        for idx in [0u64, 1, 31, 32, 1000, 123_456] {
            let a = meta_addr(&g, 0, 1, idx);
            assert!(a.row >= g.rows_per_bank - 64, "row {} outside reserved", a.row);
            assert!(a.col < g.cols_per_row());
            assert_eq!(a.rank, 1);
        }
    }

    #[test]
    fn meta_addr_stripes_banks() {
        let g = Geometry::paper_baseline();
        let a = meta_addr(&g, 0, 0, 0);
        let b = meta_addr(&g, 0, 0, 1);
        assert_ne!((a.bank_group, a.bank), (b.bank_group, b.bank));
    }
}
