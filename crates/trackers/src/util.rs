//! Internal helpers shared by the trackers.

use sim_core::addr::{DramAddr, Geometry};

/// SplitMix64 finaliser — a cheap keyed hash for counter indexing.
#[inline]
pub fn hash64(x: u64, seed: u64) -> u64 {
    let mut z = x ^ seed.rotate_left(17) ^ 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(seed | 1);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Maps a metadata (counter-storage) index to a DRAM address in the
/// reserved region — the top rows of each bank, striped across banks so
/// counter traffic spreads like Hydra's RCT does.
pub fn meta_addr(geom: &Geometry, channel: u8, rank: u8, idx: u64) -> DramAddr {
    let banks = geom.banks_per_rank() as u64;
    let bank_flat = (idx % banks) as u32;
    let depth = (idx / banks) % 64; // 64 reserved rows per bank
    let row = geom.rows_per_bank - 1 - depth as u32;
    DramAddr {
        channel,
        rank,
        bank_group: (bank_flat / geom.banks_per_group as u32) as u8,
        bank: (bank_flat % geom.banks_per_group as u32) as u8,
        row,
        col: (idx % geom.cols_per_row() as u64) as u16,
    }
}

/// Open-addressed `u64 -> u32` map for DRAM-resident counter mirrors
/// (Hydra's RCT and friends): splitmix-hashed linear probing, power-of-two
/// capacity, no deletions (trackers only insert and clear wholesale at
/// reset boundaries). Replaces `std::collections::HashMap` on the per-ACT
/// hot path, where SipHash plus the std probe loop dominated the
/// attack-scenario profile.
#[derive(Debug, Clone)]
pub struct RowMap {
    /// Keys shifted by one so 0 marks an empty slot (row indices are
    /// stored as `row + 1`, bounded far below `u64::MAX`).
    keys: Vec<u64>,
    vals: Vec<u32>,
    len: usize,
    mask: usize,
}

impl RowMap {
    /// Creates an empty map with a small initial capacity.
    pub fn new() -> Self {
        const INIT: usize = 1024;
        Self { keys: vec![0; INIT], vals: vec![0; INIT], len: 0, mask: INIT - 1 }
    }

    /// Entries currently stored.
    #[cfg(test)]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no entry is stored.
    #[cfg(test)]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn slot_of(&self, key: u64) -> usize {
        // The finaliser alone mixes well; the table index takes the low
        // bits of the mixed word.
        (hash64(key, 0x9E37) as usize) & self.mask
    }

    /// Looks up `row`.
    #[inline]
    pub fn get(&self, row: u64) -> Option<u32> {
        let needle = row + 1;
        let mut i = self.slot_of(needle);
        loop {
            let k = self.keys[i];
            if k == needle {
                return Some(self.vals[i]);
            }
            if k == 0 {
                return None;
            }
            i = (i + 1) & self.mask;
        }
    }

    /// Inserts or overwrites `row`'s counter.
    pub fn insert(&mut self, row: u64, val: u32) {
        if self.len * 4 >= self.keys.len() * 3 {
            self.grow();
        }
        let needle = row + 1;
        let mut i = self.slot_of(needle);
        loop {
            let k = self.keys[i];
            if k == needle {
                self.vals[i] = val;
                return;
            }
            if k == 0 {
                self.keys[i] = needle;
                self.vals[i] = val;
                self.len += 1;
                return;
            }
            i = (i + 1) & self.mask;
        }
    }

    /// Removes every entry, keeping the allocation (the tREFW reset).
    pub fn clear(&mut self) {
        self.keys.fill(0);
        self.len = 0;
    }

    fn grow(&mut self) {
        let new_cap = self.keys.len() * 2;
        let old_keys = std::mem::replace(&mut self.keys, vec![0; new_cap]);
        let old_vals = std::mem::replace(&mut self.vals, vec![0; new_cap]);
        self.mask = new_cap - 1;
        self.len = 0;
        for (k, v) in old_keys.into_iter().zip(old_vals) {
            if k != 0 {
                self.insert(k - 1, v);
            }
        }
    }
}

impl Default for RowMap {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_map_behaves_like_a_map() {
        let mut m = RowMap::new();
        assert!(m.is_empty());
        assert_eq!(m.get(0), None);
        // Insert enough to force several growths; mirror with std.
        let mut reference = std::collections::HashMap::new();
        let mut x: u64 = 0x1234_5678;
        for i in 0..10_000u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let row = x % 2_097_152; // rank-row domain
            m.insert(row, i as u32);
            reference.insert(row, i as u32);
        }
        assert_eq!(m.len(), reference.len());
        for (&k, &v) in &reference {
            assert_eq!(m.get(k), Some(v), "row {k}");
        }
        assert_eq!(m.get(2_097_153), None);
        m.clear();
        assert!(m.is_empty());
        assert_eq!(m.get(42), None);
        m.insert(42, 7);
        assert_eq!(m.get(42), Some(7));
    }

    #[test]
    fn hash_is_deterministic_and_seed_sensitive() {
        assert_eq!(hash64(42, 1), hash64(42, 1));
        assert_ne!(hash64(42, 1), hash64(42, 2));
        assert_ne!(hash64(42, 1), hash64(43, 1));
    }

    #[test]
    fn meta_addr_stays_in_reserved_region() {
        let g = Geometry::paper_baseline();
        for idx in [0u64, 1, 31, 32, 1000, 123_456] {
            let a = meta_addr(&g, 0, 1, idx);
            assert!(a.row >= g.rows_per_bank - 64, "row {} outside reserved", a.row);
            assert!(a.col < g.cols_per_row());
            assert_eq!(a.rank, 1);
        }
    }

    #[test]
    fn meta_addr_stripes_banks() {
        let g = Geometry::paper_baseline();
        let a = meta_addr(&g, 0, 0, 0);
        let b = meta_addr(&g, 0, 0, 1);
        assert_ne!((a.bank_group, a.bank), (b.bank_group, b.bank));
    }
}
