//! PARA (Kim et al., ISCA 2014): probabilistic adjacent-row activation.
//!
//! Stateless: every activation refreshes the row's neighbours with
//! probability `p`. We set `p = 18.4 / N_RH`, which bounds the chance that
//! an aggressor reaches N_RH activations without a neighbour refresh at
//! `(1-p)^N_RH ~ e^-18.4 ~ 1e-8` per row per window. Being stateless, PARA
//! needs no reset and is immune to structure-targeted Perf-Attacks, but its
//! mitigation frequency grows quickly as N_RH drops (Fig. 15/16).

use crate::TrackerParams;
use sim_core::registry::{ParamSpec, RegistryError, TrackerSpec};
use sim_core::rng::Xoshiro256;
use sim_core::tracker::{Activation, RowHammerTracker, StorageOverhead, TrackerAction};

/// Safety exponent: p = EXPONENT / N_RH.
pub const EXPONENT: f64 = 18.4;

/// Parameters for one PARA instance: the probabilistic management policy
/// is a single knob, the safety exponent — failure probability per window
/// is ~e^-exponent, mitigation frequency grows linearly with it.
#[derive(Debug, Clone, Copy)]
pub struct ParaParams {
    /// Shared construction parameters.
    pub base: TrackerParams,
    /// Safety exponent: refresh probability p = exponent / N_RH.
    pub exponent: f64,
}

impl ParaParams {
    /// The paper-baseline exponent (18.4 ≈ 1e-8 failure per row-window).
    pub fn new(base: TrackerParams) -> Self {
        Self { base, exponent: EXPONENT }
    }
}

/// The PARA tracker for one channel.
#[derive(Debug)]
pub struct Para {
    prob: f64,
    rng: Xoshiro256,
    /// Mitigations issued (introspection).
    pub mitigations: u64,
}

impl Para {
    /// Creates a PARA instance with `p` derived from `p.nrh`.
    pub fn new(p: TrackerParams) -> Self {
        Self::with_params(ParaParams::new(p)).expect("paper-baseline exponent is valid")
    }

    /// Creates a PARA instance with an explicit safety exponent.
    pub fn with_params(pp: ParaParams) -> Result<Self, RegistryError> {
        if pp.exponent <= 0.0 || pp.exponent.is_nan() {
            return Err(RegistryError::invalid("para", "exponent", "must be positive"));
        }
        Ok(Self {
            prob: (pp.exponent / pp.base.nrh as f64).min(1.0),
            rng: Xoshiro256::seed_from(pp.base.seed ^ 0xA11A_5A5Au64),
            mitigations: 0,
        })
    }

    /// The per-activation refresh probability.
    pub fn probability(&self) -> f64 {
        self.prob
    }
}

impl RowHammerTracker for Para {
    fn name(&self) -> &'static str {
        "PARA"
    }

    fn on_activation(&mut self, act: Activation, actions: &mut Vec<TrackerAction>) {
        if self.rng.gen_bool(self.prob) {
            self.mitigations += 1;
            actions.push(TrackerAction::MitigateRow(act.addr));
        }
    }

    fn storage_overhead(&self) -> StorageOverhead {
        // Stateless: an LFSR and a comparator.
        StorageOverhead::new(16, 0)
    }
}

/// PARA's registry descriptor: key `para`, the probabilistic policy's
/// safety exponent exposed for sweeps (Jaleel et al., arXiv:2404.16256
/// explore exactly this axis of tracker-management policies).
pub fn spec() -> TrackerSpec {
    TrackerSpec::new("para", "PARA", |p| {
        let mut pp = ParaParams::new(TrackerParams::from_build(p));
        pp.exponent = p.float("exponent");
        Ok(Box::new(Para::with_params(pp)?))
    })
    .summary("PARA (ISCA'14): stateless probabilistic adjacent-row refresh")
    .param(
        ParamSpec::float("exponent", "safety exponent; refresh p = exponent / N_RH", EXPONENT)
            .range(1e-6, 1e6),
    )
    .storage(|_| StorageOverhead::new(16, 0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::addr::DramAddr;
    use sim_core::req::SourceId;

    fn act() -> Activation {
        Activation { addr: DramAddr::default(), source: SourceId(0), cycle: 0 }
    }

    #[test]
    fn probability_scales_inverse_to_nrh() {
        let hi = Para::new(TrackerParams::baseline(4000, 0, 1));
        let lo = Para::new(TrackerParams::baseline(125, 0, 1));
        assert!(lo.probability() > hi.probability() * 30.0);
    }

    #[test]
    fn mitigation_rate_matches_probability() {
        let mut p = Para::new(TrackerParams::baseline(500, 0, 9));
        let mut out = Vec::new();
        for _ in 0..100_000 {
            p.on_activation(act(), &mut out);
        }
        let rate = p.mitigations as f64 / 100_000.0;
        assert!((rate - p.probability()).abs() < 0.005, "rate {rate}");
        assert_eq!(out.len(), p.mitigations as usize);
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = Para::new(TrackerParams::baseline(500, 0, 4));
        let mut b = Para::new(TrackerParams::baseline(500, 0, 4));
        let mut oa = Vec::new();
        let mut ob = Vec::new();
        for _ in 0..10_000 {
            a.on_activation(act(), &mut oa);
            b.on_activation(act(), &mut ob);
        }
        assert_eq!(oa.len(), ob.len());
    }
}
