//! BlockHammer (Yağlıkçı et al., HPCA 2021): throttling via Bloom filters.
//!
//! Row activations are inserted into dual time-interleaved **counting Bloom
//! filters** (one active, one retiring, swapped every tREFW/2). A row whose
//! min-counter estimate crosses the blacklist threshold N_BL gets its ACTs
//! rate-limited so it cannot reach N_RH within the window.
//!
//! Because CBF counters are shared, heavy benign traffic inflates them and
//! benign rows get throttled too — the false-positive cost that makes
//! BlockHammer lose 25% at N_RH = 500 and 66% at N_RH = 125 (Fig. 14), and
//! the aliasing is also exploitable as a Perf-Attack (hammering rows that
//! share filter entries with a victim's working set).

use crate::util::hash64;
use crate::TrackerParams;
use sim_core::addr::DramAddr;
use sim_core::registry::{ParamSpec, RegistryError, TrackerSpec};
use sim_core::req::SourceId;
use sim_core::time::Cycle;
use sim_core::tracker::{Activation, RowHammerTracker, StorageOverhead, TrackerAction};

/// Counters per bank per filter. The HPCA'21 design uses 1K counters per
/// bank over a 32 ms epoch; we scale the filter with our shorter default
/// simulation windows so benign aliasing pressure per counter matches.
pub const CBF_COUNTERS: usize = 128;
/// Hash functions.
pub const CBF_HASHES: usize = 3;
/// Upper bound on configurable hash functions (index buffers are
/// stack-allocated at this size).
pub const MAX_CBF_HASHES: usize = 8;

/// Bloom-filter parameters for one BlockHammer instance.
/// [`BlockHammerParams::new`] gives the paper-matched scaling; the registry
/// exposes each field — counting-Bloom-filter geometry drives both the
/// false-positive throttling cost and the aliasing attack surface.
#[derive(Debug, Clone, Copy)]
pub struct BlockHammerParams {
    /// Shared construction parameters.
    pub base: TrackerParams,
    /// Counters per bank per filter.
    pub cbf_counters: usize,
    /// Hash functions (at most [`MAX_CBF_HASHES`]).
    pub cbf_hashes: usize,
    /// Blacklist threshold divisor: N_BL = N_RH / divisor.
    pub blacklist_divisor: u32,
}

impl BlockHammerParams {
    /// The window-scaled baseline (128 counters, 3 hashes, N_BL = N_RH/4).
    pub fn new(base: TrackerParams) -> Self {
        Self { base, cbf_counters: CBF_COUNTERS, cbf_hashes: CBF_HASHES, blacklist_divisor: 4 }
    }

    fn validate(&self) -> Result<(), RegistryError> {
        if self.cbf_counters == 0 {
            return Err(RegistryError::invalid("blockhammer", "cbf_counters", "must be nonzero"));
        }
        if self.cbf_hashes == 0 || self.cbf_hashes > MAX_CBF_HASHES {
            return Err(RegistryError::invalid(
                "blockhammer",
                "cbf_hashes",
                format!("must be in 1..={MAX_CBF_HASHES}"),
            ));
        }
        if self.blacklist_divisor == 0 {
            return Err(RegistryError::invalid(
                "blockhammer",
                "blacklist_divisor",
                "must be nonzero",
            ));
        }
        Ok(())
    }
}

#[derive(Debug, Clone)]
struct BankFilters {
    /// Two filters; `active` indexes the live one.
    cbf: [Vec<u32>; 2],
    /// Last permitted-activation time per counter bucket (for throttling).
    last_act: Vec<Cycle>,
}

/// The BlockHammer tracker for one channel.
#[derive(Debug)]
pub struct BlockHammer {
    p: TrackerParams,
    cbf_counters: usize,
    cbf_hashes: usize,
    banks: Vec<BankFilters>,
    active: usize,
    next_swap: Cycle,
    half_window: Cycle,
    /// Blacklist threshold N_BL.
    n_bl: u32,
    /// Minimum spacing enforced on blacklisted rows, in cycles.
    min_spacing: Cycle,
    /// Throttle decisions issued (introspection).
    pub throttles: u64,
}

impl BlockHammer {
    /// Creates a BlockHammer instance for one channel.
    pub fn new(p: TrackerParams) -> Self {
        Self::with_params(BlockHammerParams::new(p)).expect("paper-baseline sizes are valid")
    }

    /// Creates a BlockHammer instance with explicit Bloom parameters.
    pub fn with_params(bp: BlockHammerParams) -> Result<Self, RegistryError> {
        bp.validate()?;
        let p = bp.base;
        let nbanks = (p.geometry.ranks as u32 * p.geometry.banks_per_rank()) as usize;
        let banks = (0..nbanks)
            .map(|_| BankFilters {
                cbf: [vec![0; bp.cbf_counters], vec![0; bp.cbf_counters]],
                last_act: vec![0; bp.cbf_counters],
            })
            .collect();
        let t_refw = sim_core::time::ms_to_cycles(32.0);
        // Blacklist at a fraction of the threshold; enforce a spacing that
        // caps a row at N_RH activations per window.
        let n_bl = (p.nrh / bp.blacklist_divisor).max(1);
        let min_spacing = t_refw / p.nrh as Cycle;
        Ok(Self {
            p,
            cbf_counters: bp.cbf_counters,
            cbf_hashes: bp.cbf_hashes,
            banks,
            active: 0,
            next_swap: t_refw / 2,
            half_window: t_refw / 2,
            n_bl,
            min_spacing,
            throttles: 0,
        })
    }

    /// The blacklist threshold.
    pub fn blacklist_threshold(&self) -> u32 {
        self.n_bl
    }

    fn bank_index(&self, a: &DramAddr) -> usize {
        (a.rank as u32 * self.p.geometry.banks_per_rank() + self.p.geometry.bank_in_rank(a))
            as usize
    }

    /// Computes the hash bucket for each active hash function into a
    /// stack buffer; callers slice the first `cbf_hashes` entries.
    fn bucket_indices(&self, row: u32) -> ([usize; MAX_CBF_HASHES], usize) {
        let mut out = [0; MAX_CBF_HASHES];
        for (h, o) in out.iter_mut().enumerate().take(self.cbf_hashes) {
            *o =
                (hash64(row as u64, self.p.seed ^ ((h as u64) << 13)) as usize) % self.cbf_counters;
        }
        (out, self.cbf_hashes)
    }

    fn maybe_swap(&mut self, now: Cycle) {
        while now >= self.next_swap {
            // Staggered epochs: clear one filter every half window, so the
            // two filters' lifetimes overlap and a hammered row is always
            // covered by at least one of them.
            self.active ^= 1;
            for b in &mut self.banks {
                b.cbf[self.active].fill(0);
            }
            self.next_swap += self.half_window;
        }
    }

    /// Estimate = max over the two filters of the min over the hash
    /// buckets; inserts go to both filters (overlapping-lifetime CBFs).
    fn estimate(&self, bank: usize, idxs: &[usize]) -> u32 {
        let f0 = idxs.iter().map(|&i| self.banks[bank].cbf[0][i]).min().unwrap_or(0);
        let f1 = idxs.iter().map(|&i| self.banks[bank].cbf[1][i]).min().unwrap_or(0);
        f0.max(f1)
    }
}

impl RowHammerTracker for BlockHammer {
    fn name(&self) -> &'static str {
        "BlockHammer"
    }

    fn on_activation(&mut self, act: Activation, _actions: &mut Vec<TrackerAction>) {
        self.maybe_swap(act.cycle);
        let bank = self.bank_index(&act.addr);
        let (buf, n) = self.bucket_indices(act.addr.row);
        let idxs = &buf[..n];
        // Conservative update on both overlapping filters.
        for f in 0..2 {
            let est = idxs.iter().map(|&i| self.banks[bank].cbf[f][i]).min().unwrap_or(0);
            let newv = est + 1;
            for &i in idxs {
                let c = &mut self.banks[bank].cbf[f][i];
                if *c < newv {
                    *c = newv;
                }
            }
        }
        for &i in idxs {
            self.banks[bank].last_act[i] = act.cycle;
        }
    }

    fn activation_delay(&mut self, addr: &DramAddr, _src: SourceId, now: Cycle) -> Cycle {
        self.maybe_swap(now);
        let bank = self.bank_index(addr);
        let (buf, n) = self.bucket_indices(addr.row);
        let idxs = &buf[..n];
        let est = self.estimate(bank, idxs);
        if est < self.n_bl {
            return 0;
        }
        // Blacklisted: enforce minimum spacing from the bucket's last ACT.
        let last = idxs.iter().map(|&i| self.banks[bank].last_act[i]).min().unwrap_or(0);
        let earliest = last + self.min_spacing;
        if earliest > now {
            self.throttles += 1;
            earliest - now
        } else {
            0
        }
    }

    fn on_refresh_window(&mut self, _cycle: Cycle, _actions: &mut Vec<TrackerAction>) {
        // Handled by the half-window swaps.
    }

    fn storage_overhead(&self) -> StorageOverhead {
        // 2 filters x 1024 x 16-bit counters x 64 banks = 256 KB... the
        // HPCA'21 paper's area-optimised config is ~48 KB per channel; we
        // report that figure (BlockHammer is not in Table III), scaled with
        // the filter geometry.
        StorageOverhead::new(48 * 1024 * self.cbf_counters as u64 / CBF_COUNTERS as u64, 0)
    }
}

/// BlockHammer's registry descriptor: key `blockhammer`, counting-Bloom
/// geometry and blacklist divisor exposed as tunable parameters.
pub fn spec() -> TrackerSpec {
    TrackerSpec::new("blockhammer", "BlockHammer", |p| {
        let mut bp = BlockHammerParams::new(TrackerParams::from_build(p));
        bp.cbf_counters = p.count("cbf_counters");
        bp.cbf_hashes = p.count("cbf_hashes");
        bp.blacklist_divisor = p.int("blacklist_divisor") as u32;
        Ok(Box::new(BlockHammer::with_params(bp)?))
    })
    .alias("bh")
    .summary("BlockHammer (HPCA'21): dual counting Bloom filters + ACT throttling")
    .param(
        ParamSpec::int("cbf_counters", "counters per bank per filter", CBF_COUNTERS as i64)
            .range(1.0, (1u64 << 20) as f64),
    )
    .param(
        ParamSpec::int("cbf_hashes", "Bloom hash functions", CBF_HASHES as i64)
            .range(1.0, MAX_CBF_HASHES as f64),
    )
    .param(
        ParamSpec::int("blacklist_divisor", "blacklist threshold N_BL = N_RH / divisor", 4)
            .range(1.0, (1u64 << 16) as f64),
    )
    .storage(|p| {
        StorageOverhead::new(48 * 1024 * p.count("cbf_counters") as u64 / CBF_COUNTERS as u64, 0)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn act(row: u32, cycle: Cycle) -> Activation {
        Activation { addr: DramAddr::new(0, 0, 0, 0, row, 0), source: SourceId(0), cycle }
    }

    fn params() -> TrackerParams {
        TrackerParams::baseline(500, 0, 11)
    }

    #[test]
    fn cold_rows_are_not_delayed() {
        let mut b = BlockHammer::new(params());
        let d = b.activation_delay(&DramAddr::new(0, 0, 0, 0, 9, 0), SourceId(0), 100);
        assert_eq!(d, 0);
    }

    #[test]
    fn hammered_row_gets_blacklisted_and_throttled() {
        let mut b = BlockHammer::new(params());
        let mut out = Vec::new();
        let mut now = 0;
        for _ in 0..b.blacklist_threshold() + 1 {
            b.on_activation(act(9, now), &mut out);
            now += 154; // tRC pace
        }
        let d = b.activation_delay(&DramAddr::new(0, 0, 0, 0, 9, 0), SourceId(0), now);
        assert!(d > 0, "blacklisted row must be delayed");
        assert!(b.throttles > 0);
    }

    #[test]
    fn throttle_caps_rate_below_nrh_per_window() {
        let p = params();
        let mut b = BlockHammer::new(p);
        let mut out = Vec::new();
        let addr = DramAddr::new(0, 0, 0, 0, 9, 0);
        let mut now: Cycle = 0;
        let mut acts = 0u64;
        let window = sim_core::time::ms_to_cycles(32.0);
        while now < window {
            let d = b.activation_delay(&addr, SourceId(0), now);
            if d > 0 {
                now += d;
                continue;
            }
            b.on_activation(act(9, now), &mut out);
            acts += 1;
            now += 154;
        }
        // Spacing is tREFW/N_RH, so the row lands near N_RH activations,
        // never far above.
        assert!(acts <= p.nrh as u64 + b.blacklist_threshold() as u64 + 8, "{acts}");
    }

    #[test]
    fn filter_swap_forgives_old_counts() {
        let mut b = BlockHammer::new(params());
        let mut out = Vec::new();
        for i in 0..200u64 {
            b.on_activation(act(9, i * 154), &mut out);
        }
        // Jump past both filters' epochs: estimates fully reset.
        let far = sim_core::time::ms_to_cycles(33.0);
        let d = b.activation_delay(&DramAddr::new(0, 0, 0, 0, 9, 0), SourceId(0), far);
        assert_eq!(d, 0, "new filter epochs start clean");
    }

    #[test]
    fn aliasing_rows_share_fate() {
        // With 1024 counters, two distinct rows can collide; verify shared
        // inflation raises the estimate of an untouched row eventually
        // (drive many rows so every bucket inflates).
        let p = TrackerParams::baseline(125, 0, 13);
        let mut b = BlockHammer::new(p);
        let mut out = Vec::new();
        let mut now = 0;
        for r in 0..4096u32 {
            for _ in 0..8 {
                b.on_activation(act(r, now), &mut out);
                now += 8;
            }
        }
        // 32K insertions over 128 buckets: every bucket >> N_BL = 31.
        let d = b.activation_delay(&DramAddr::new(0, 0, 0, 0, 60_000, 0), SourceId(0), now);
        assert!(d > 0, "benign row falsely blacklisted under heavy traffic");
    }
}
