//! The Row Group Counter table.

/// A table of saturating group counters (one per row group of a rank).
///
/// Counters saturate at the hardware width implied by the configuration
/// (255 for 1-byte entries at N_M <= 255) rather than wrapping, matching
/// the paper's 1-byte RGC entries.
#[derive(Debug, Clone)]
pub struct RgcTable {
    counts: Vec<u32>,
    saturate: u32,
}

impl RgcTable {
    /// Creates a zeroed table of `groups` counters saturating at `saturate`.
    ///
    /// # Panics
    ///
    /// Panics if `groups` is zero.
    pub fn new(groups: u64, saturate: u32) -> Self {
        assert!(groups > 0, "table must have at least one group");
        Self { counts: vec![0; groups as usize], saturate }
    }

    /// Number of groups.
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// True if the table has no groups (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Current count of `group`.
    #[inline]
    pub fn get(&self, group: u64) -> u32 {
        self.counts[group as usize]
    }

    /// Saturating increment; returns the new value.
    #[inline]
    pub fn increment(&mut self, group: u64) -> u32 {
        let c = &mut self.counts[group as usize];
        if *c < self.saturate {
            *c += 1;
        }
        *c
    }

    /// Sets `group` to `value` (clamped to the saturation limit).
    #[inline]
    pub fn set(&mut self, group: u64, value: u32) {
        self.counts[group as usize] = value.min(self.saturate);
    }

    /// Zeroes every counter.
    pub fn clear(&mut self) {
        self.counts.fill(0);
    }

    /// The saturation limit.
    pub fn saturation(&self) -> u32 {
        self.saturate
    }

    /// Maximum count currently in the table (introspection).
    pub fn max(&self) -> u32 {
        self.counts.iter().copied().max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn increments_saturate() {
        let mut t = RgcTable::new(4, 3);
        assert_eq!(t.increment(1), 1);
        assert_eq!(t.increment(1), 2);
        assert_eq!(t.increment(1), 3);
        assert_eq!(t.increment(1), 3, "saturated");
        assert_eq!(t.get(0), 0);
    }

    #[test]
    fn set_clamps() {
        let mut t = RgcTable::new(2, 255);
        t.set(0, 1000);
        assert_eq!(t.get(0), 255);
    }

    #[test]
    fn clear_zeroes() {
        let mut t = RgcTable::new(2, 255);
        t.increment(0);
        t.increment(1);
        t.clear();
        assert_eq!(t.max(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one group")]
    fn zero_groups_rejected() {
        let _ = RgcTable::new(0, 255);
    }
}
