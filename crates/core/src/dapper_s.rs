//! DAPPER-S: the secure-hashing tracker template (paper Section V).

use crate::config::DapperConfig;
use crate::rgc::RgcTable;
use llbc::KeySchedule;
use sim_core::time::Cycle;
use sim_core::tracker::{Activation, RowHammerTracker, StorageOverhead, TrackerAction};

/// One rank's state: a keyed cipher and its RGC table.
#[derive(Debug, Clone)]
struct RankState {
    keys: KeySchedule,
    rgc: RgcTable,
}

/// The DAPPER-S tracker for one channel.
///
/// Every activation encrypts the per-rank row index with the rank's LLBC,
/// indexes the RGC table with the hashed address divided by the group size,
/// and mitigates **all rows of the group** when the counter reaches
/// N_M = N_RH/2 (Fig. 6). Keys refresh and the table clears every
/// `t_reset` (tREFW by default; Section V-D analyses shorter periods).
#[derive(Debug, Clone)]
pub struct DapperS {
    cfg: DapperConfig,
    ranks: Vec<RankState>,
    next_reset: Cycle,
    /// Group mitigations performed (introspection).
    pub mitigations: u64,
    /// Total rows refreshed by mitigations.
    pub rows_refreshed: u64,
}

impl DapperS {
    /// Creates a DAPPER-S instance.
    pub fn new(cfg: DapperConfig) -> Self {
        let saturate = counter_saturation(&cfg);
        let ranks = (0..cfg.geometry.ranks)
            .map(|r| RankState {
                keys: KeySchedule::new(
                    cfg.domain_bits(),
                    cfg.seed ^ 0xDA99E5 ^ ((cfg.channel as u64) << 32 | (r as u64) << 16),
                ),
                rgc: RgcTable::new(cfg.groups_per_rank(), saturate),
            })
            .collect();
        Self { cfg, ranks, next_reset: cfg.t_reset, mitigations: 0, rows_refreshed: 0 }
    }

    /// The configuration.
    pub fn config(&self) -> &DapperConfig {
        &self.cfg
    }

    /// The group a row currently maps to in `rank` — the mapping an
    /// attacker tries to capture (white-box introspection for the security
    /// analysis and the mapping-capture attack harness).
    pub fn group_of(&self, rank: u8, row_index: u64) -> u64 {
        let y = self.ranks[rank as usize].keys.cipher().encrypt(row_index);
        y / self.cfg.group_size as u64
    }

    /// Rekeys every rank and clears the tables (the t_reset action).
    pub fn reset_and_rekey(&mut self) {
        for r in &mut self.ranks {
            r.keys.rekey();
            r.rgc.clear();
        }
    }

    /// Number of rekeys performed on rank 0 (introspection).
    pub fn key_generation(&self) -> u64 {
        self.ranks[0].keys.generation()
    }

    fn maybe_reset(&mut self, now: Cycle) {
        while now >= self.next_reset {
            self.reset_and_rekey();
            self.next_reset += self.cfg.t_reset;
        }
    }
}

/// Counter saturation: full byte(s) for the configured width.
fn counter_saturation(cfg: &DapperConfig) -> u32 {
    match cfg.bytes_per_counter() {
        1 => u8::MAX as u32,
        2 => u16::MAX as u32,
        _ => u32::MAX,
    }
}

impl RowHammerTracker for DapperS {
    fn name(&self) -> &'static str {
        "DAPPER-S"
    }

    fn on_activation(&mut self, act: Activation, actions: &mut Vec<TrackerAction>) {
        self.maybe_reset(act.cycle);
        let geom = self.cfg.geometry;
        let rank = act.addr.rank as usize;
        let row = geom.rank_row_index(&act.addr);
        let s = self.cfg.group_size as u64;
        let state = &mut self.ranks[rank];
        let y = state.keys.cipher().encrypt(row);
        let group = y / s;
        let count = state.rgc.increment(group);
        if count >= self.cfg.nm() {
            // Mitigate every row in the group: decrypt the contiguous hashed
            // range back to original addresses (Fig. 6b).
            state.rgc.set(group, 0);
            self.mitigations += 1;
            self.rows_refreshed += s;
            let cipher = *state.keys.cipher();
            for h in (group * s)..((group + 1) * s) {
                let orig = cipher.decrypt(h);
                let addr = geom.addr_from_rank_row_index(act.addr.channel, rank as u8, orig);
                actions.push(TrackerAction::MitigateRow(addr));
            }
        }
    }

    fn on_trefi(&mut self, cycle: Cycle, _actions: &mut Vec<TrackerAction>) {
        self.maybe_reset(cycle);
    }

    fn on_refresh_window(&mut self, cycle: Cycle, _actions: &mut Vec<TrackerAction>) {
        self.maybe_reset(cycle);
    }

    fn storage_overhead(&self) -> StorageOverhead {
        // One RGC table per rank: 8K x 1 B x 2 ranks = 16 KB per 32 GB
        // (Section V-A), plus four 16-bit key registers per rank.
        let table = self.cfg.groups_per_rank() * self.cfg.bytes_per_counter();
        let keys = 4 * 2;
        StorageOverhead::new((table + keys) * self.cfg.geometry.ranks as u64, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::addr::DramAddr;
    use sim_core::req::SourceId;

    fn cfg() -> DapperConfig {
        DapperConfig::baseline(500, 0, 77)
    }

    fn act(addr: DramAddr, cycle: Cycle) -> Activation {
        Activation { addr, source: SourceId(0), cycle }
    }

    #[test]
    fn hammered_row_mitigated_at_nm_with_full_group() {
        let mut t = DapperS::new(cfg());
        let a = DramAddr::new(0, 0, 2, 1, 777, 0);
        let mut out = Vec::new();
        for i in 0..250u64 {
            t.on_activation(act(a, i), &mut out);
        }
        assert_eq!(t.mitigations, 1);
        assert_eq!(out.len(), 256, "whole group refreshed");
        // The hammered row itself must be among the refreshed rows.
        assert!(out.iter().any(
            |x| matches!(x, TrackerAction::MitigateRow(r) if r.row == 777 && r.bank_group == 2 && r.bank == 1)
        ));
    }

    #[test]
    fn group_members_decrypt_to_distinct_rows() {
        let mut t = DapperS::new(cfg());
        let a = DramAddr::new(0, 0, 0, 0, 10, 0);
        let mut out = Vec::new();
        for i in 0..250u64 {
            t.on_activation(act(a, i), &mut out);
        }
        let mut rows: Vec<_> = out
            .iter()
            .map(|x| match x {
                TrackerAction::MitigateRow(r) => cfg().geometry.rank_row_index(r),
                _ => unreachable!(),
            })
            .collect();
        rows.sort_unstable();
        rows.dedup();
        assert_eq!(rows.len(), 256, "bijective decryption: no duplicates");
    }

    #[test]
    fn counter_resets_after_mitigation() {
        let mut t = DapperS::new(cfg());
        let a = DramAddr::new(0, 0, 0, 0, 10, 0);
        let mut out = Vec::new();
        for i in 0..500u64 {
            t.on_activation(act(a, i), &mut out);
        }
        assert_eq!(t.mitigations, 2, "250 + 250 activations = 2 mitigations");
    }

    #[test]
    fn reset_clears_counts_and_changes_mapping() {
        let mut t = DapperS::new(cfg().with_t_reset(1000));
        let a = DramAddr::new(0, 0, 0, 0, 10, 0);
        let row = cfg().geometry.rank_row_index(&a);
        let g_before = t.group_of(0, row);
        let mut out = Vec::new();
        // 249 activations before the reset boundary.
        for i in 0..249u64 {
            t.on_activation(act(a, i % 999), &mut out);
        }
        assert!(out.is_empty());
        // Cross the reset boundary: keys change, counts clear.
        t.on_trefi(1000, &mut out);
        assert_eq!(t.key_generation(), 1);
        let g_after = t.group_of(0, row);
        assert_ne!(g_before, g_after, "rekey remaps the row (w.h.p.)");
        for i in 0..249u64 {
            t.on_activation(act(a, 1001 + i), &mut out);
        }
        assert!(out.is_empty(), "counts must not persist across reset");
    }

    #[test]
    fn different_ranks_have_independent_mappings() {
        let t = DapperS::new(cfg());
        let differing = (0..256u64).filter(|&r| t.group_of(0, r) != t.group_of(1, r)).count();
        assert!(differing > 250);
    }

    #[test]
    fn storage_is_16kb_per_channel() {
        let t = DapperS::new(cfg());
        let kb = t.storage_overhead().sram_kb();
        assert!((kb - 16.0).abs() < 0.1, "{kb} KB");
    }

    #[test]
    fn sequential_rows_spread_over_groups() {
        // The property that protects workloads with spatial locality.
        let t = DapperS::new(cfg());
        let mut groups = std::collections::HashSet::new();
        for r in 0..256u64 {
            groups.insert(t.group_of(0, r));
        }
        assert!(groups.len() > 200, "{} groups", groups.len());
    }
}
