//! # DAPPER: a performance-attack-resilient RowHammer tracker
//!
//! The paper's primary contribution, in two stages:
//!
//! * [`DapperS`] — the secure-hashing template (Section V). Rows are mapped
//!   to shared **Row Group Counters** (RGCs) through a keyed low-latency
//!   block cipher so an attacker cannot learn which rows share a counter;
//!   all counters live in memory-controller SRAM, so there is no counter
//!   traffic to amplify. Vulnerable to the mapping-agnostic *streaming* and
//!   *refresh* attacks.
//! * [`DapperH`] — the hardened tracker (Section VI): **double hashing**
//!   (two independently keyed RGC tables; mitigation only when *both*
//!   groups hit the threshold), a **per-bank bit-vector** that defeats the
//!   streaming attack, **shared-row mitigation** (only rows in both groups
//!   are refreshed — 99.9% of the time exactly the aggressor), and the
//!   **reset-counter** scheme that keeps un-refreshed members soundly
//!   accounted after a mitigation.
//!
//! Both implement [`sim_core::tracker::RowHammerTracker`] and drop into the
//! `memctrl` controller unchanged.
//!
//! # Example
//!
//! ```
//! use dapper::{DapperH, DapperConfig};
//! use sim_core::addr::{DramAddr, Geometry};
//! use sim_core::req::SourceId;
//! use sim_core::tracker::{Activation, RowHammerTracker, TrackerAction};
//!
//! let cfg = DapperConfig::baseline(500, 0, 42);
//! let mut tracker = DapperH::new(cfg);
//! let mut actions = Vec::new();
//! let row = DramAddr::new(0, 0, 3, 1, 0x1234, 0);
//! // Hammer one row to the RowHammer threshold: DAPPER-H mitigates first.
//! for cycle in 0..500u64 {
//!     tracker.on_activation(
//!         Activation { addr: row, source: SourceId(0), cycle },
//!         &mut actions,
//!     );
//! }
//! assert!(actions.iter().any(|a| matches!(a, TrackerAction::MitigateRow(r) if r.row == 0x1234)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod dapper_h;
mod dapper_s;
pub mod registry;
mod rgc;

pub use config::{DapperConfig, ResetStrategy};
pub use dapper_h::DapperH;
pub use dapper_s::DapperS;
pub use registry::{dapper_h_spec, dapper_s_spec, register_builtin};
pub use rgc::RgcTable;
