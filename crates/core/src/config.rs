//! DAPPER configuration.

use sim_core::addr::Geometry;
use sim_core::time::{ms_to_cycles, Cycle};

/// How DAPPER-H restarts the triggering counters after a mitigation
/// (ablation knob; the paper's design is [`ResetStrategy::Cascade`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ResetStrategy {
    /// Zero both counters (DAPPER-S style; forgets un-refreshed members —
    /// insecure in the worst case, shown by the ablation).
    Zero,
    /// Restart at the max opposite-table count of un-refreshed members
    /// (the literal Fig. 8 rule; sound but can re-arm hot groups and storm
    /// the mitigation path under the refresh attack).
    ResetCounter,
    /// Like `ResetCounter`, but members whose opposite count passed N_M/2
    /// are refreshed along with the shared rows and excluded from the max
    /// (sound *and* storm-free; the default).
    #[default]
    Cascade,
}

/// Configuration shared by DAPPER-S and DAPPER-H.
#[derive(Debug, Clone, Copy)]
pub struct DapperConfig {
    /// RowHammer threshold N_RH.
    pub nrh: u32,
    /// Rows per group (paper default 256).
    pub group_size: u32,
    /// DRAM organisation (the hash domain is rows-per-rank).
    pub geometry: Geometry,
    /// Channel this instance covers.
    pub channel: u8,
    /// Seed for key generation.
    pub seed: u64,
    /// Key refresh + table reset period in cycles. DAPPER-H always uses
    /// tREFW; DAPPER-S defaults to tREFW and Section V-D analyses shorter
    /// periods (Table II).
    pub t_reset: Cycle,
    /// DAPPER-H post-mitigation counter restart rule (ablation knob).
    pub reset_strategy: ResetStrategy,
    /// Enable DAPPER-H's per-bank bit-vector (ablation knob; disabling it
    /// re-exposes the streaming attack).
    pub bit_vector: bool,
}

impl DapperConfig {
    /// The paper's baseline configuration at a given threshold.
    pub fn baseline(nrh: u32, channel: u8, seed: u64) -> Self {
        Self {
            nrh,
            group_size: 256,
            geometry: Geometry::paper_baseline(),
            channel,
            seed,
            t_reset: ms_to_cycles(32.0),
            reset_strategy: ResetStrategy::Cascade,
            bit_vector: true,
        }
    }

    /// Mitigation threshold N_M = N_RH / 2.
    pub fn nm(&self) -> u32 {
        (self.nrh / 2).max(1)
    }

    /// Number of row groups per rank (8K for the baseline).
    pub fn groups_per_rank(&self) -> u64 {
        self.geometry.rows_per_rank() / self.group_size as u64
    }

    /// Bits of the hashed row-address domain (21 for the baseline).
    pub fn domain_bits(&self) -> u32 {
        self.geometry.rank_row_bits()
    }

    /// Bytes needed per RGC entry for this threshold (1 B up to N_M = 255).
    pub fn bytes_per_counter(&self) -> u64 {
        match self.nm() {
            0..=255 => 1,
            256..=65_535 => 2,
            _ => 4,
        }
    }

    /// Builder-style override of the group size.
    ///
    /// # Panics
    ///
    /// Panics unless `group_size` is a power of two dividing the rank rows.
    pub fn with_group_size(mut self, group_size: u32) -> Self {
        assert!(group_size.is_power_of_two(), "group size must be a power of two");
        assert_eq!(
            self.geometry.rows_per_rank() % group_size as u64,
            0,
            "group size must divide rows per rank"
        );
        self.group_size = group_size;
        self
    }

    /// Builder-style override of the reset period.
    pub fn with_t_reset(mut self, t_reset: Cycle) -> Self {
        self.t_reset = t_reset;
        self
    }

    /// Builder-style override of the reset strategy (ablation).
    pub fn with_reset_strategy(mut self, strategy: ResetStrategy) -> Self {
        self.reset_strategy = strategy;
        self
    }

    /// Builder-style override of the bit-vector (ablation).
    pub fn with_bit_vector(mut self, enabled: bool) -> Self {
        self.bit_vector = enabled;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_matches_paper() {
        let c = DapperConfig::baseline(500, 0, 1);
        assert_eq!(c.group_size, 256);
        assert_eq!(c.nm(), 250);
        assert_eq!(c.groups_per_rank(), 8192);
        assert_eq!(c.domain_bits(), 21);
        assert_eq!(c.bytes_per_counter(), 1);
    }

    #[test]
    fn counter_width_scales_with_threshold() {
        assert_eq!(DapperConfig::baseline(500, 0, 1).bytes_per_counter(), 1);
        assert_eq!(DapperConfig::baseline(4000, 0, 1).bytes_per_counter(), 2);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_odd_group_size() {
        let _ = DapperConfig::baseline(500, 0, 1).with_group_size(100);
    }
}
