//! Registry descriptors for the DAPPER variants.
//!
//! DAPPER-S and DAPPER-H register from their home crate, exposing the
//! [`DapperConfig`] knobs — group size, key-reset period, the DAPPER-H
//! reset strategy, and the per-bank bit-vector — as tunable registry
//! parameters so the paper's Section V-D / VI ablations become config-level
//! sweeps.

use crate::{DapperConfig, DapperH, DapperS, ResetStrategy};
use sim_core::registry::{ParamSpec, RegistryError, TrackerParams, TrackerRegistry, TrackerSpec};
use sim_core::time::ms_to_cycles;
use sim_core::tracker::StorageOverhead;

fn config_from(key: &'static str, p: &TrackerParams) -> Result<DapperConfig, RegistryError> {
    let mut cfg =
        DapperConfig { geometry: p.geometry, ..DapperConfig::baseline(p.nrh, p.channel, p.seed) };
    let group_size = p.int("group_size");
    let gs = u32::try_from(group_size)
        .ok()
        .filter(|g| g.is_power_of_two() && cfg.geometry.rows_per_rank().is_multiple_of(*g as u64))
        .ok_or_else(|| {
            RegistryError::invalid(
                key,
                "group_size",
                "must be a power of two dividing the rows per rank",
            )
        })?;
    cfg.group_size = gs;
    let t_reset_ms = p.float("t_reset_ms");
    if t_reset_ms <= 0.0 || t_reset_ms.is_nan() {
        return Err(RegistryError::invalid(key, "t_reset_ms", "must be positive"));
    }
    cfg.t_reset = ms_to_cycles(t_reset_ms);
    cfg.reset_strategy = match p.text("reset_strategy") {
        "zero" => ResetStrategy::Zero,
        "reset-counter" => ResetStrategy::ResetCounter,
        _ => ResetStrategy::Cascade,
    };
    cfg.bit_vector = p.flag("bit_vector");
    Ok(cfg)
}

fn dapper_params(spec: TrackerSpec) -> TrackerSpec {
    spec.param(
        ParamSpec::int("group_size", "rows per row-group counter (power of two)", 256)
            .range(1.0, (1u64 << 20) as f64),
    )
    .param(
        ParamSpec::float("t_reset_ms", "key refresh + table reset period, ms", 32.0)
            .range(1e-3, 1e4),
    )
    .param(ParamSpec::choice(
        "reset_strategy",
        "DAPPER-H post-mitigation counter restart rule",
        "cascade",
        &["zero", "reset-counter", "cascade"],
    ))
    .param(ParamSpec::flag(
        "bit_vector",
        "enable DAPPER-H's per-bank bit-vector (ablation)",
        true,
    ))
}

/// DAPPER-S's registry descriptor (Section V: single keyed RGC table).
pub fn dapper_s_spec() -> TrackerSpec {
    dapper_params(TrackerSpec::new("dapper-s", "DAPPER-S", |p| {
        Ok(Box::new(DapperS::new(config_from("dapper-s", p)?)))
    }))
    .summary("DAPPER-S (this paper, Sec. V): keyed row-group counters in SRAM")
    .storage(|p| {
        let cfg = match config_from("dapper-s", p) {
            Ok(c) => c,
            Err(_) => return StorageOverhead::default(),
        };
        let table = cfg.groups_per_rank() * cfg.bytes_per_counter();
        StorageOverhead::new((table + 8) * cfg.geometry.ranks as u64, 0)
    })
}

/// DAPPER-H's registry descriptor (Section VI: double hashing + bit-vector
/// + reset counters).
pub fn dapper_h_spec() -> TrackerSpec {
    dapper_params(TrackerSpec::new("dapper-h", "DAPPER-H", |p| {
        Ok(Box::new(DapperH::new(config_from("dapper-h", p)?)))
    }))
    .alias("dapper")
    .summary("DAPPER-H (this paper, Sec. VI): hardened double-hashed tracker")
    .storage(|p| {
        let cfg = match config_from("dapper-h", p) {
            Ok(c) => c,
            Err(_) => return StorageOverhead::default(),
        };
        let groups = cfg.groups_per_rank();
        let bytes = 2 * groups * cfg.bytes_per_counter() + groups * 4 + 16;
        StorageOverhead::new(bytes * cfg.geometry.ranks as u64, 0)
    })
}

/// Registers DAPPER-S and DAPPER-H into `reg`.
pub fn register_builtin(reg: &mut TrackerRegistry) -> Result<(), RegistryError> {
    reg.register(dapper_s_spec())?;
    reg.register(dapper_h_spec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::addr::Geometry;
    use sim_core::registry::ParamValue;
    use std::collections::BTreeMap;

    fn base() -> TrackerParams {
        TrackerParams::new(500, Geometry::paper_baseline(), 0, 42)
    }

    #[test]
    fn both_variants_build_with_defaults() {
        let mut reg = TrackerRegistry::new();
        register_builtin(&mut reg).unwrap();
        assert_eq!(reg.build("dapper-s", &base()).map(|t| t.name()), Ok("DAPPER-S"));
        assert_eq!(reg.build("DAPPER_H", &base()).map(|t| t.name()), Ok("DAPPER-H"));
        assert_eq!(reg.build("dapper", &base()).map(|t| t.name()), Ok("DAPPER-H"));
    }

    #[test]
    fn bad_group_size_names_the_key() {
        let mut reg = TrackerRegistry::new();
        register_builtin(&mut reg).unwrap();
        let mut ov = BTreeMap::new();
        ov.insert("group_size".to_string(), ParamValue::Int(100));
        let err = reg.build("dapper-h", &base().with_values(ov)).map(|_| ()).unwrap_err();
        assert!(err.to_string().contains("'dapper-h.group_size'"), "{err}");
    }

    #[test]
    fn reset_strategy_choices_are_enforced() {
        let mut reg = TrackerRegistry::new();
        register_builtin(&mut reg).unwrap();
        let mut ov = BTreeMap::new();
        ov.insert("reset_strategy".to_string(), ParamValue::Str("sideways".into()));
        let err = reg.build("dapper-h", &base().with_values(ov)).map(|_| ()).unwrap_err();
        assert!(err.to_string().contains("reset_strategy"), "{err}");
    }

    #[test]
    fn storage_matches_table_three() {
        let mut reg = TrackerRegistry::new();
        register_builtin(&mut reg).unwrap();
        let h = reg.resolve("dapper-h").unwrap().storage_overhead(&base());
        assert!((h.sram_kb() - 96.0).abs() < 1.0, "{}", h.sram_kb());
        let s = reg.resolve("dapper-s").unwrap().storage_overhead(&base());
        assert!((s.sram_kb() - 16.0).abs() < 0.1, "{}", s.sram_kb());
    }
}
