//! DAPPER-H: the hardened tracker (paper Section VI).

use crate::config::{DapperConfig, ResetStrategy};
use crate::rgc::RgcTable;
use llbc::KeySchedule;

use sim_core::time::Cycle;
use sim_core::tracker::{Activation, RowHammerTracker, StorageOverhead, TrackerAction};
use std::collections::HashSet;

#[derive(Debug, Clone)]
struct RankState {
    keys1: KeySchedule,
    keys2: KeySchedule,
    rgc1: RgcTable,
    rgc2: RgcTable,
    /// Per-group-of-table-1 bit-vector: one bit per bank of the rank.
    bitvec: Vec<u32>,
}

/// The DAPPER-H tracker for one channel.
///
/// Mechanisms (Fig. 8):
///
/// * **Double hashing** — two RGC tables with independent LLBC keys;
///   mitigation only when *both* of the accessed groups reach N_M.
/// * **Per-bank bit-vector** on table 1 — an activation from a bank whose
///   bit is unset sets the bit and increments only table 2, so streaming
///   accesses that sweep banks cannot inflate table 1.
/// * **Shared-row mitigation** — only rows in the intersection of the two
///   groups are refreshed (99.9% of the time exactly the aggressor).
/// * **Reset counters** — after a mitigation each triggering RGC restarts
///   at the maximum opposite-table count over its un-refreshed members, so
///   no member's activity is forgotten.
#[derive(Debug, Clone)]
pub struct DapperH {
    cfg: DapperConfig,
    ranks: Vec<RankState>,
    next_reset: Cycle,
    /// Mitigation events (introspection).
    pub mitigations: u64,
    /// Mitigations that refreshed exactly one shared row.
    pub single_shared: u64,
    /// Mitigations that refreshed more than one shared row.
    pub multi_shared: u64,
    /// Hot group members refreshed by the cascade rule.
    pub cascades: u64,
}

impl DapperH {
    /// Creates a DAPPER-H instance.
    pub fn new(cfg: DapperConfig) -> Self {
        let saturate = match cfg.bytes_per_counter() {
            1 => u8::MAX as u32,
            2 => u16::MAX as u32,
            _ => u32::MAX,
        };
        let groups = cfg.groups_per_rank();
        let ranks = (0..cfg.geometry.ranks)
            .map(|r| RankState {
                keys1: KeySchedule::new(
                    cfg.domain_bits(),
                    cfg.seed ^ 0x1DA9_9E01 ^ ((cfg.channel as u64) << 40 | (r as u64) << 20),
                ),
                keys2: KeySchedule::new(
                    cfg.domain_bits(),
                    cfg.seed ^ 0x2DA9_9E02 ^ ((cfg.channel as u64) << 41 | (r as u64) << 21),
                ),
                rgc1: RgcTable::new(groups, saturate),
                rgc2: RgcTable::new(groups, saturate),
                bitvec: vec![0; groups as usize],
            })
            .collect();
        Self {
            cfg,
            ranks,
            next_reset: cfg.t_reset,
            mitigations: 0,
            single_shared: 0,
            multi_shared: 0,
            cascades: 0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &DapperConfig {
        &self.cfg
    }

    /// The pair of groups a row maps to in `rank` (white-box introspection
    /// for the security analysis and the mapping-capture attack harness).
    pub fn groups_of(&self, rank: u8, row_index: u64) -> (u64, u64) {
        let s = self.cfg.group_size as u64;
        let r = &self.ranks[rank as usize];
        (r.keys1.cipher().encrypt(row_index) / s, r.keys2.cipher().encrypt(row_index) / s)
    }

    /// Current counter values for a row's two groups (introspection).
    pub fn counts_of(&self, rank: u8, row_index: u64) -> (u32, u32) {
        let (g1, g2) = self.groups_of(rank, row_index);
        let r = &self.ranks[rank as usize];
        (r.rgc1.get(g1), r.rgc2.get(g2))
    }

    /// Rekeys both ciphers of every rank and clears all state (the tREFW
    /// reset, Section VI-B1).
    pub fn reset_and_rekey(&mut self) {
        for r in &mut self.ranks {
            r.keys1.rekey();
            r.keys2.rekey();
            r.rgc1.clear();
            r.rgc2.clear();
            r.bitvec.fill(0);
        }
    }

    fn maybe_reset(&mut self, now: Cycle) {
        while now >= self.next_reset {
            self.reset_and_rekey();
            self.next_reset += self.cfg.t_reset;
        }
    }

    /// Performs the mitigation for the (g1, g2) pair of `rank`: refreshes
    /// shared rows and applies the reset-counter rule (Fig. 8, steps 3-4).
    fn mitigate(
        &mut self,
        channel: u8,
        rank: u8,
        g1: u64,
        g2: u64,
        actions: &mut Vec<TrackerAction>,
    ) {
        let s = self.cfg.group_size as u64;
        let geom = self.cfg.geometry;
        let state = &mut self.ranks[rank as usize];
        let c1 = *state.keys1.cipher();
        let c2 = *state.keys2.cipher();

        // Decrypt both groups' members.
        let members1: Vec<u64> = ((g1 * s)..((g1 + 1) * s)).map(|h| c1.decrypt(h)).collect();
        let members2: Vec<u64> = ((g2 * s)..((g2 + 1) * s)).map(|h| c2.decrypt(h)).collect();
        let set1: HashSet<u64> = members1.iter().copied().collect();
        let shared: Vec<u64> = members2.iter().copied().filter(|m| set1.contains(m)).collect();

        // Refresh the shared rows.
        for &m in &shared {
            let addr = geom.addr_from_rank_row_index(channel, rank, m);
            actions.push(TrackerAction::MitigateRow(addr));
        }
        self.mitigations += 1;
        if shared.len() <= 1 {
            self.single_shared += 1;
        } else {
            self.multi_shared += 1;
        }

        // Reset counters: each triggering RGC restarts at the maximum
        // opposite-table count over its un-refreshed members — a sound upper
        // bound on any remaining member's true activation count. Members
        // whose opposite count is already past half the threshold would
        // re-arm the group and storm the mitigation path, so the reset rule
        // *cascades*: such hot members are refreshed along with the shared
        // rows (clearing their accumulated damage) and excluded from the
        // maximum. Refreshed rows contribute nothing, keeping the rule
        // sound while the reset value stays below N_M / 2.
        let (reset1, reset2) = match self.cfg.reset_strategy {
            ResetStrategy::Zero => (0, 0),
            ResetStrategy::ResetCounter => {
                let shared_set: HashSet<u64> = shared.iter().copied().collect();
                let r1 = members1
                    .iter()
                    .filter(|m| !shared_set.contains(m))
                    .map(|&m| state.rgc2.get(c2.encrypt(m) / s))
                    .max()
                    .unwrap_or(0);
                let r2 = members2
                    .iter()
                    .filter(|m| !shared_set.contains(m))
                    .map(|&m| state.rgc1.get(c1.encrypt(m) / s))
                    .max()
                    .unwrap_or(0);
                (r1, r2)
            }
            ResetStrategy::Cascade => {
                let cascade_limit = (self.cfg.nm() / 2).max(1);
                let mut refreshed: HashSet<u64> = shared.iter().copied().collect();
                let mut r1 = 0;
                for &m in &members1 {
                    if refreshed.contains(&m) {
                        continue;
                    }
                    let c = state.rgc2.get(c2.encrypt(m) / s);
                    if c >= cascade_limit {
                        self.cascades += 1;
                        refreshed.insert(m);
                        let addr = geom.addr_from_rank_row_index(channel, rank, m);
                        actions.push(TrackerAction::MitigateRow(addr));
                    } else {
                        r1 = r1.max(c);
                    }
                }
                let mut r2 = 0;
                for &m in &members2 {
                    if refreshed.contains(&m) {
                        continue;
                    }
                    let c = state.rgc1.get(c1.encrypt(m) / s);
                    if c >= cascade_limit {
                        self.cascades += 1;
                        refreshed.insert(m);
                        let addr = geom.addr_from_rank_row_index(channel, rank, m);
                        actions.push(TrackerAction::MitigateRow(addr));
                    } else {
                        r2 = r2.max(c);
                    }
                }
                (r1, r2)
            }
        };
        state.rgc1.set(g1, reset1);
        state.rgc2.set(g2, reset2);
        state.bitvec[g1 as usize] = 0;
    }
}

impl RowHammerTracker for DapperH {
    fn name(&self) -> &'static str {
        "DAPPER-H"
    }

    fn on_activation(&mut self, act: Activation, actions: &mut Vec<TrackerAction>) {
        self.maybe_reset(act.cycle);
        let geom = self.cfg.geometry;
        let rank = act.addr.rank as usize;
        let row = geom.rank_row_index(&act.addr);
        let bank = geom.bank_in_rank(&act.addr);
        let bit = 1u32 << (bank % 32);
        let s = self.cfg.group_size as u64;
        let nm = self.cfg.nm();

        let state = &mut self.ranks[rank];
        let g1 = state.keys1.cipher().encrypt(row) / s;
        let g2 = state.keys2.cipher().encrypt(row) / s;

        if self.cfg.bit_vector && state.bitvec[g1 as usize] & bit == 0 {
            // First activation from this bank since the last clear: filter
            // it out of table 1 (defeats the streaming attack, Fig. 8-1).
            state.bitvec[g1 as usize] |= bit;
            state.rgc2.increment(g2);
        } else {
            // Count in both tables and clear the *other* banks' bits
            // (Fig. 8-2).
            state.rgc1.increment(g1);
            state.rgc2.increment(g2);
            state.bitvec[g1 as usize] = bit;
        }

        if state.rgc1.get(g1) >= nm && state.rgc2.get(g2) >= nm {
            self.mitigate(act.addr.channel, rank as u8, g1, g2, actions);
        }
    }

    fn on_trefi(&mut self, cycle: Cycle, _actions: &mut Vec<TrackerAction>) {
        self.maybe_reset(cycle);
    }

    fn on_refresh_window(&mut self, cycle: Cycle, _actions: &mut Vec<TrackerAction>) {
        self.maybe_reset(cycle);
    }

    fn storage_overhead(&self) -> StorageOverhead {
        // Section VI-H: two 8K x 1 B tables per rank (32 KB per channel) +
        // a 32-bit-per-group bit-vector per rank (64 KB per channel) = 96 KB
        // per 32 GB. Key registers are negligible but counted.
        let groups = self.cfg.groups_per_rank();
        let tables = 2 * groups * self.cfg.bytes_per_counter();
        let bitvec = groups * 4;
        let keys = 2 * 4 * 2;
        StorageOverhead::new((tables + bitvec + keys) * self.cfg.geometry.ranks as u64, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::addr::DramAddr;
    use sim_core::req::SourceId;

    fn cfg() -> DapperConfig {
        DapperConfig::baseline(500, 0, 2024)
    }

    fn act(addr: DramAddr, cycle: Cycle) -> Activation {
        Activation { addr, source: SourceId(0), cycle }
    }

    fn addr_of(geom: &sim_core::addr::Geometry, rank: u8, index: u64) -> DramAddr {
        geom.addr_from_rank_row_index(0, rank, index)
    }

    #[test]
    fn single_row_hammer_mitigated_before_nrh() {
        let mut t = DapperH::new(cfg());
        let a = DramAddr::new(0, 0, 3, 1, 0x777, 0);
        let mut out = Vec::new();
        let mut first = None;
        for i in 1..=500u64 {
            out.clear();
            t.on_activation(act(a, i), &mut out);
            if out.iter().any(|x| matches!(x, TrackerAction::MitigateRow(r) if r.row == 0x777)) {
                first = Some(i);
                break;
            }
        }
        let first = first.expect("row must be mitigated before N_RH");
        // Bit-set round + N_M increments: mitigation at exactly N_M + 1.
        assert_eq!(first, 251);
        assert!(t.mitigations >= 1);
    }

    #[test]
    fn mitigation_refreshes_only_shared_rows() {
        let mut t = DapperH::new(cfg());
        let a = DramAddr::new(0, 0, 3, 1, 0x777, 0);
        let mut out = Vec::new();
        for i in 1..=251u64 {
            t.on_activation(act(a, i), &mut out);
        }
        // Overwhelmingly a single shared row (Section VI-D note 5).
        assert!(out.len() <= 3, "refreshed {} rows", out.len());
        assert!(out.iter().any(|x| matches!(x, TrackerAction::MitigateRow(r) if r.row == 0x777)));
        assert_eq!(t.single_shared + t.multi_shared, t.mitigations);
    }

    #[test]
    fn interleaved_streaming_is_filtered_by_bitvector() {
        // The streaming attack: activate every row once, banks interleaved
        // (the order bank-level parallelism produces). The bit-vector must
        // keep table 1 cold: no mitigations.
        let c = cfg();
        let geom = c.geometry;
        let mut t = DapperH::new(c);
        let mut out = Vec::new();
        let banks = geom.banks_per_rank() as u64;
        let rows_per_bank = 4096u64; // slice of the full sweep, same density
        for row in 0..rows_per_bank {
            for bank in 0..banks {
                let idx = bank * geom.rows_per_bank as u64 + row;
                t.on_activation(act(addr_of(&geom, 0, idx), row * banks + bank), &mut out);
            }
        }
        assert_eq!(t.mitigations, 0, "streaming must not trigger mitigations");
        assert!(out.is_empty());
    }

    #[test]
    fn refresh_attack_refreshes_single_rows_not_groups() {
        // One hot row per bank, hammered round-robin (the refresh attack).
        let c = cfg();
        let geom = c.geometry;
        let mut t = DapperH::new(c);
        let mut out = Vec::new();
        let banks = geom.banks_per_rank() as u64;
        let rows: Vec<DramAddr> =
            (0..banks).map(|b| addr_of(&geom, 0, b * geom.rows_per_bank as u64 + 42)).collect();
        let mut cycle = 0u64;
        for _round in 0..600 {
            for a in &rows {
                cycle += 1;
                t.on_activation(act(*a, cycle), &mut out);
            }
        }
        assert!(t.mitigations >= banks, "every hot row eventually mitigated");
        // The defining win over DAPPER-S: mitigations refresh the shared
        // row plus a handful of cascaded hot members — never the whole
        // 256-row group.
        let rows_per_mitigation = out.len() as f64 / t.mitigations as f64;
        assert!(rows_per_mitigation < 16.0, "{rows_per_mitigation} rows/mitigation");
    }

    #[test]
    fn suppression_attack_cannot_exceed_nrh() {
        // Adversarial pattern against the bit-vector: alternate the victim
        // row with a same-group row in another bank so the victim's bit is
        // repeatedly cleared and its table-1 increments suppressed. The
        // reset-counter rule must still bound the victim's unmitigated
        // activations below N_RH.
        let c = cfg();
        let geom = c.geometry;
        let t_probe = DapperH::new(c);
        // Find two rows in different banks sharing a table-1 group.
        let victim_idx = 7u64;
        let (vg1, _) = t_probe.groups_of(0, victim_idx);
        let mut partner = None;
        for idx in (geom.rows_per_bank as u64)..(3 * geom.rows_per_bank as u64) {
            if t_probe.groups_of(0, idx).0 == vg1 {
                partner = Some(idx);
                break;
            }
        }
        let Some(partner_idx) = partner else {
            // ~256 expected matches per bank; practically always found.
            panic!("no same-group partner found");
        };
        let mut t = DapperH::new(c);
        let victim = addr_of(&geom, 0, victim_idx);
        let partner = addr_of(&geom, 0, partner_idx);
        let mut out = Vec::new();
        let mut unmitigated = 0u64;
        let mut max_unmitigated = 0u64;
        let mut cycle = 0u64;
        for _ in 0..2000 {
            for a in [victim, partner] {
                cycle += 1;
                out.clear();
                t.on_activation(act(a, cycle), &mut out);
                if a == victim {
                    unmitigated += 1;
                }
                if out
                    .iter()
                    .any(|x| matches!(x, TrackerAction::MitigateRow(r) if r.row == victim.row && r.bank_group == victim.bank_group && r.bank == victim.bank))
                {
                    max_unmitigated = max_unmitigated.max(unmitigated);
                    unmitigated = 0;
                }
            }
        }
        max_unmitigated = max_unmitigated.max(unmitigated);
        assert!(
            max_unmitigated < 500,
            "victim reached {max_unmitigated} activations without refresh"
        );
    }

    #[test]
    fn reset_counter_protects_hot_members() {
        // After a mitigation triggered by row A, a hot member of A's
        // table-1 group must not lose its progress: it is either refreshed
        // by the cascade rule or kept armed by the reset counter.
        let c = cfg();
        let geom = c.geometry;
        let probe = DapperH::new(c);
        let a_idx = 11u64;
        let (g1, _) = probe.groups_of(0, a_idx);
        let mut partner = None;
        for idx in 0..(4 * geom.rows_per_bank as u64) {
            if idx != a_idx && probe.groups_of(0, idx).0 == g1 {
                partner = Some(idx);
                break;
            }
        }
        let partner_idx = partner.expect("partner row in same table-1 group");
        let mut t = DapperH::new(c);
        let mut out = Vec::new();
        let mut cycle = 0u64;
        // Drive the partner's table-2 counter high (it shares g1).
        let partner_addr = addr_of(&geom, 0, partner_idx);
        for _ in 0..200 {
            cycle += 1;
            t.on_activation(act(partner_addr, cycle), &mut out);
        }
        let (_, p2_before) = t.counts_of(0, partner_idx);
        assert!(p2_before >= 199);
        // Now hammer A until it mitigates (clearing g1's counter).
        let a_addr = addr_of(&geom, 0, a_idx);
        let mut mitigated = false;
        for _ in 0..600 {
            cycle += 1;
            out.clear();
            t.on_activation(act(a_addr, cycle), &mut out);
            if !out.is_empty() {
                mitigated = true;
                break;
            }
        }
        assert!(mitigated);
        // The hot partner (opposite count 200 >= N_M/2) must have been
        // cascaded: refreshed together with the triggering mitigation.
        assert!(t.cascades > 0, "hot member must trigger the cascade rule");
        let cascaded = out.iter().any(|x| {
            matches!(x, TrackerAction::MitigateRow(r)
                if c.geometry.rank_row_index(r) == partner_idx)
        });
        assert!(cascaded, "partner must be refreshed by the cascade");
    }

    #[test]
    fn trefw_reset_rekeys_and_clears() {
        let c = cfg().with_t_reset(10_000);
        let mut t = DapperH::new(c);
        let (g1_before, g2_before) = t.groups_of(0, 99);
        let a = DramAddr::new(0, 0, 0, 0, 42, 0);
        let mut out = Vec::new();
        for i in 0..200u64 {
            t.on_activation(act(a, i), &mut out);
        }
        t.on_refresh_window(10_000, &mut out);
        let (g1_after, g2_after) = t.groups_of(0, 99);
        assert!(g1_before != g1_after || g2_before != g2_after);
        let idx = c.geometry.rank_row_index(&a);
        assert_eq!(t.counts_of(0, idx), (0, 0));
    }

    #[test]
    fn storage_is_96kb_per_channel() {
        let t = DapperH::new(cfg());
        let kb = t.storage_overhead().sram_kb();
        assert!((kb - 96.0).abs() < 0.2, "{kb} KB");
    }

    #[test]
    fn two_tables_have_independent_mappings() {
        let t = DapperH::new(cfg());
        let same = (0..1024u64)
            .filter(|&r| {
                let (g1, g2) = t.groups_of(0, r);
                g1 == g2
            })
            .count();
        // Independent uniform mappings collide on ~1/8192 of rows.
        assert!(same < 8, "{same} rows map to equal group ids");
    }
}
