//! Per-channel DRAM state: banks, ranks, data bus, refresh, mitigation.

use crate::energy::{EnergyCounters, EnergyModel};
use crate::timing::TimingParams;
use sim_core::addr::{DramAddr, Geometry};
use sim_core::config::MitigationKind;
use sim_core::time::Cycle;
use sim_core::tracker::ResetScope;

/// State of one DRAM bank.
#[derive(Debug, Clone, Copy, Default)]
struct BankState {
    open_row: Option<u32>,
    /// Earliest cycle an ACT may issue (tRC / tRP / blocking).
    next_act: Cycle,
    /// Earliest PRE (tRAS / tRTP / tWR).
    next_pre: Cycle,
    /// Earliest column command (tRCD).
    next_col: Cycle,
}

/// Per-rank constraints shared by its banks.
#[derive(Debug, Clone)]
struct RankState {
    banks: Vec<BankState>,
    /// tRRD_S: earliest next ACT anywhere in the rank.
    next_act_any: Cycle,
    /// tRRD_L: earliest next ACT per bank group.
    next_act_bg: Vec<Cycle>,
    /// Last four ACT issue times (tFAW).
    faw: [Cycle; 4],
    faw_idx: usize,
    /// ACTs issued so far (the tFAW gate only applies after four).
    faw_count: u64,
    /// Rank blocked (REF, reset sweep) until this cycle.
    blocked_until: Cycle,
}

impl RankState {
    fn new(geom: &Geometry) -> Self {
        Self {
            banks: vec![BankState::default(); geom.banks_per_rank() as usize],
            next_act_any: 0,
            next_act_bg: vec![0; geom.bank_groups as usize],
            faw: [0; 4],
            faw_idx: 0,
            faw_count: 0,
            blocked_until: 0,
        }
    }
}

/// One DDR5 channel: ranks of banks plus the shared data bus.
///
/// All `earliest_*` queries return the first cycle `>= now` at which the
/// command could legally issue; the matching `issue_*` must then be called
/// with exactly that cycle (or later).
#[derive(Debug, Clone)]
pub struct DramChannel {
    geom: Geometry,
    timing: TimingParams,
    ranks: Vec<RankState>,
    /// Data bus is busy until this cycle.
    data_bus_free: Cycle,
    /// Energy accounting for this channel.
    pub energy: EnergyCounters,
}

impl DramChannel {
    /// Creates an idle channel.
    pub fn new(geom: Geometry, timing: TimingParams) -> Self {
        let ranks = (0..geom.ranks).map(|_| RankState::new(&geom)).collect();
        Self {
            geom,
            timing,
            ranks,
            data_bus_free: 0,
            energy: EnergyCounters::new(EnergyModel::ddr5()),
        }
    }

    /// The channel's timing parameters.
    pub fn timing(&self) -> &TimingParams {
        &self.timing
    }

    /// The channel's geometry.
    pub fn geometry(&self) -> &Geometry {
        &self.geom
    }

    fn bank(&self, a: &DramAddr) -> &BankState {
        &self.ranks[a.rank as usize].banks[self.geom.bank_in_rank(a) as usize]
    }

    fn bank_mut(&mut self, a: &DramAddr) -> &mut BankState {
        let idx = self.geom.bank_in_rank(a) as usize;
        &mut self.ranks[a.rank as usize].banks[idx]
    }

    /// The row currently open in the addressed bank, if any.
    pub fn open_row(&self, a: &DramAddr) -> Option<u32> {
        self.bank(a).open_row
    }

    /// The row currently open in bank `(rank, bank-in-rank)`, if any.
    ///
    /// The `*_at` accessors are the scheduler's fast paths: its per-bank
    /// scan already knows the coordinates, so they skip the address
    /// re-decode the [`DramAddr`]-keyed variants pay.
    pub fn open_row_at(&self, rank: u8, bank: u32) -> Option<u32> {
        self.ranks[rank as usize].banks[bank as usize].open_row
    }

    /// [`DramChannel::earliest_col`] keyed by (rank, bank-in-rank).
    pub fn earliest_col_at(&self, rank: u8, bank: u32, now: Cycle) -> Cycle {
        let r = &self.ranks[rank as usize];
        let b = &r.banks[bank as usize];
        let bus_gate = self.data_bus_free.saturating_sub(self.timing.t_cl);
        now.max(b.next_col).max(r.blocked_until).max(bus_gate)
    }

    /// [`DramChannel::earliest_act`] keyed by (rank, bank-in-rank, group).
    pub fn earliest_act_at(&self, rank: u8, bank: u32, bg: u8, now: Cycle) -> Cycle {
        let r = &self.ranks[rank as usize];
        let b = &r.banks[bank as usize];
        debug_assert!(b.open_row.is_none(), "ACT to an open bank; PRE first");
        let faw_gate = if r.faw_count >= 4 { r.faw[r.faw_idx] + self.timing.t_faw } else { 0 };
        now.max(b.next_act)
            .max(r.next_act_any)
            .max(r.next_act_bg[bg as usize])
            .max(faw_gate)
            .max(r.blocked_until)
    }

    /// [`DramChannel::earliest_pre`] keyed by (rank, bank-in-rank).
    pub fn earliest_pre_at(&self, rank: u8, bank: u32, now: Cycle) -> Cycle {
        let r = &self.ranks[rank as usize];
        now.max(r.banks[bank as usize].next_pre).max(r.blocked_until)
    }

    /// True if the addressed bank has `a.row` open (a row-buffer hit).
    pub fn is_row_hit(&self, a: &DramAddr) -> bool {
        self.open_row(a) == Some(a.row)
    }

    /// True if the bank has no open row.
    pub fn is_bank_closed(&self, a: &DramAddr) -> bool {
        self.open_row(a).is_none()
    }

    /// Earliest cycle >= `now` at which an ACT to `a` may issue. The bank
    /// must be closed (PRE first otherwise).
    pub fn earliest_act(&self, a: &DramAddr, now: Cycle) -> Cycle {
        let rank = &self.ranks[a.rank as usize];
        let bank = self.bank(a);
        debug_assert!(bank.open_row.is_none(), "ACT to an open bank; PRE first");
        let faw_gate =
            if rank.faw_count >= 4 { rank.faw[rank.faw_idx] + self.timing.t_faw } else { 0 };
        now.max(bank.next_act)
            .max(rank.next_act_any)
            .max(rank.next_act_bg[a.bank_group as usize])
            .max(faw_gate)
            .max(rank.blocked_until)
    }

    /// Issues an ACT at cycle `at` (must satisfy [`Self::earliest_act`]).
    pub fn issue_act(&mut self, a: &DramAddr, at: Cycle) {
        let t = self.timing;
        {
            let rank = &mut self.ranks[a.rank as usize];
            rank.next_act_any = at + t.t_rrd_s;
            rank.next_act_bg[a.bank_group as usize] = at + t.t_rrd_l;
            rank.faw[rank.faw_idx] = at;
            rank.faw_idx = (rank.faw_idx + 1) % 4;
            rank.faw_count += 1;
        }
        let bank = self.bank_mut(a);
        bank.open_row = Some(a.row);
        bank.next_act = at + t.t_rc;
        bank.next_pre = at + t.t_ras;
        bank.next_col = at + t.t_rcd;
        self.energy.on_act();
    }

    /// Earliest cycle >= `now` for a PRE to the addressed bank.
    pub fn earliest_pre(&self, a: &DramAddr, now: Cycle) -> Cycle {
        let rank = &self.ranks[a.rank as usize];
        now.max(self.bank(a).next_pre).max(rank.blocked_until)
    }

    /// Issues a PRE (closes the open row).
    pub fn issue_pre(&mut self, a: &DramAddr, at: Cycle) {
        let t_rp = self.timing.t_rp;
        let bank = self.bank_mut(a);
        bank.open_row = None;
        bank.next_act = bank.next_act.max(at + t_rp);
    }

    /// Earliest cycle >= `now` for a column command (read or write) to the
    /// open row of this bank, including data-bus availability.
    ///
    /// # Panics
    ///
    /// Debug-asserts that the addressed row is open.
    pub fn earliest_col(&self, a: &DramAddr, now: Cycle) -> Cycle {
        debug_assert!(self.is_row_hit(a), "column command needs the row open");
        let rank = &self.ranks[a.rank as usize];
        let bank = self.bank(a);
        // The data burst must not overlap the previous one; issue so that the
        // burst (starting tCL/tCWL later) begins after data_bus_free.
        let bus_gate = self.data_bus_free.saturating_sub(self.timing.t_cl);
        now.max(bank.next_col).max(rank.blocked_until).max(bus_gate)
    }

    /// Issues a read at `at`; returns the cycle at which data is fully
    /// transferred (request completion).
    pub fn issue_read(&mut self, a: &DramAddr, at: Cycle) -> Cycle {
        let t = self.timing;
        let done = at + t.t_cl + t.t_bl;
        self.data_bus_free = at + t.t_cl + t.t_bl;
        let bank = self.bank_mut(a);
        bank.next_pre = bank.next_pre.max(at + t.t_rtp);
        bank.next_col = bank.next_col.max(at + t.t_bl);
        self.energy.on_read();
        done
    }

    /// Issues a write at `at`; returns the completion cycle.
    pub fn issue_write(&mut self, a: &DramAddr, at: Cycle) -> Cycle {
        let t = self.timing;
        let done = at + t.t_cwl + t.t_bl;
        self.data_bus_free = at + t.t_cwl + t.t_bl;
        let bank = self.bank_mut(a);
        bank.next_pre = bank.next_pre.max(at + t.t_cwl + t.t_bl + t.t_wr);
        bank.next_col = bank.next_col.max(at + t.t_bl);
        self.energy.on_write();
        done
    }

    /// Issues an all-bank auto-refresh to a rank: closes every bank and
    /// blocks the rank for tRFC. Returns the cycle the rank unblocks.
    pub fn issue_ref(&mut self, rank: u8, at: Cycle) -> Cycle {
        let until = at + self.timing.t_rfc;
        let r = &mut self.ranks[rank as usize];
        for b in &mut r.banks {
            b.open_row = None;
            b.next_act = b.next_act.max(until);
        }
        r.blocked_until = r.blocked_until.max(until);
        self.energy.on_ref();
        until
    }

    /// Issues a mitigation command for aggressor `a` and returns the cycle
    /// the affected banks unblock.
    ///
    /// * [`MitigationKind::Vrr`] blocks only the aggressor's bank for
    ///   `2 * blast_radius` victim-row refreshes.
    /// * [`MitigationKind::DrfmSb`] / [`MitigationKind::RfmSb`] block the
    ///   same-numbered bank in every bank group of the rank for the JEDEC
    ///   command duration.
    pub fn issue_mitigation(
        &mut self,
        a: &DramAddr,
        kind: MitigationKind,
        blast_radius: u8,
        at: Cycle,
    ) -> Cycle {
        let victims = 2 * blast_radius as u64;
        match kind {
            MitigationKind::Vrr => {
                let until = at + self.timing.vrr_block(blast_radius);
                let bank = self.bank_mut(a);
                bank.open_row = None;
                bank.next_act = bank.next_act.max(until);
                bank.next_pre = bank.next_pre.max(until);
                self.energy.on_victim_rows(victims);
                until
            }
            MitigationKind::DrfmSb | MitigationKind::RfmSb => {
                let dur = if kind == MitigationKind::DrfmSb {
                    self.timing.t_drfm_sb
                } else {
                    self.timing.t_rfm_sb
                };
                let until = at + dur;
                let rank = &mut self.ranks[a.rank as usize];
                let bpg = self.geom.banks_per_group as usize;
                for bg in 0..self.geom.bank_groups as usize {
                    let b = &mut rank.banks[bg * bpg + a.bank as usize];
                    b.open_row = None;
                    b.next_act = b.next_act.max(until);
                    b.next_pre = b.next_pre.max(until);
                }
                self.energy.on_victim_rows(victims);
                until
            }
        }
    }

    /// Blocks an entire rank or the whole channel for a structure-reset
    /// sweep (refreshing every row in scope). Returns the unblock cycle.
    pub fn issue_reset_sweep(&mut self, scope: ResetScope, at: Cycle) -> Cycle {
        let dur = self.timing.sweep_block(self.geom.rows_per_bank);
        let until = at + dur;
        let rows_per_rank = self.geom.rows_per_rank();
        let rank_indices: Vec<usize> = match scope {
            ResetScope::Rank { rank, .. } => vec![rank as usize],
            ResetScope::Channel { .. } => (0..self.ranks.len()).collect(),
        };
        for ri in rank_indices {
            let r = &mut self.ranks[ri];
            for b in &mut r.banks {
                b.open_row = None;
                b.next_act = b.next_act.max(until);
            }
            r.blocked_until = r.blocked_until.max(until);
            self.energy.on_sweep_rows(rows_per_rank);
        }
        until
    }

    /// The cycle until which the addressed bank cannot accept an ACT —
    /// used by the scheduler to find ready requests cheaply.
    pub fn bank_ready_for_act(&self, a: &DramAddr, now: Cycle) -> bool {
        self.earliest_act(a, now) <= now
    }

    /// True if the rank is currently blocked (REF or sweep in progress).
    pub fn rank_blocked(&self, rank: u8, now: Cycle) -> bool {
        self.ranks[rank as usize].blocked_until > now
    }

    /// Earliest cycle at which the rank unblocks.
    pub fn rank_blocked_until(&self, rank: u8) -> Cycle {
        self.ranks[rank as usize].blocked_until
    }

    /// First cycle at which every rank a reset sweep of `scope` would touch
    /// is unblocked — i.e. the earliest cycle the sweep could start. Used
    /// by the time-skipping engine to jump over long REF/sweep blocks.
    pub fn scope_unblocked_at(&self, scope: ResetScope) -> Cycle {
        match scope {
            ResetScope::Rank { rank, .. } => self.rank_blocked_until(rank),
            ResetScope::Channel { .. } => {
                self.ranks.iter().map(|r| r.blocked_until).max().unwrap_or(0)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ch() -> DramChannel {
        DramChannel::new(Geometry::paper_baseline(), TimingParams::ddr5_6400())
    }

    fn addr(bg: u8, bank: u8, row: u32) -> DramAddr {
        DramAddr::new(0, 0, bg, bank, row, 0)
    }

    #[test]
    fn act_opens_row_and_enforces_trc() {
        let mut c = ch();
        let a = addr(0, 0, 10);
        let t0 = c.earliest_act(&a, 0);
        c.issue_act(&a, t0);
        assert_eq!(c.open_row(&a), Some(10));
        // Close and re-activate: tRC must separate the two ACTs.
        let tp = c.earliest_pre(&a, t0);
        assert!(tp >= t0 + c.timing().t_ras);
        c.issue_pre(&a, tp);
        let b = addr(0, 0, 11);
        let t1 = c.earliest_act(&b, tp);
        assert!(t1 >= t0 + c.timing().t_rc, "tRC violated: {t0} -> {t1}");
    }

    #[test]
    fn trrd_spaces_acts_across_banks() {
        let mut c = ch();
        let a = addr(0, 0, 1);
        let b = addr(1, 0, 2); // different bank group -> tRRD_S
        let d = addr(0, 1, 3); // same bank group -> tRRD_L
        let t0 = c.earliest_act(&a, 0);
        c.issue_act(&a, t0);
        let t1 = c.earliest_act(&b, t0);
        assert_eq!(t1, t0 + c.timing().t_rrd_s);
        c.issue_act(&b, t1);
        let t2 = c.earliest_act(&d, t1);
        assert!(t2 >= t0 + c.timing().t_rrd_l);
    }

    #[test]
    fn faw_limits_burst_of_activates() {
        let mut c = ch();
        let mut now = 0;
        // Issue 4 ACTs to different bank groups as fast as allowed.
        for i in 0..4u8 {
            let a = addr(i, 0, 5);
            now = c.earliest_act(&a, now);
            c.issue_act(&a, now);
        }
        // The fifth ACT must wait for the tFAW window from the first.
        let fifth = addr(4, 0, 5);
        let t = c.earliest_act(&fifth, now);
        assert!(t >= c.timing().t_faw, "fifth ACT at {t} ignores tFAW");
    }

    #[test]
    fn read_completion_includes_cas_and_burst() {
        let mut c = ch();
        let a = addr(2, 1, 7);
        let t0 = c.earliest_act(&a, 0);
        c.issue_act(&a, t0);
        let tc = c.earliest_col(&a, t0);
        assert!(tc >= t0 + c.timing().t_rcd);
        let done = c.issue_read(&a, tc);
        assert_eq!(done, tc + c.timing().t_cl + c.timing().t_bl);
    }

    #[test]
    fn data_bus_serialises_bursts() {
        let mut c = ch();
        let a = addr(0, 0, 1);
        let b = addr(1, 0, 2);
        let ta = c.earliest_act(&a, 0);
        c.issue_act(&a, ta);
        let tb = c.earliest_act(&b, ta);
        c.issue_act(&b, tb);
        let ca = c.earliest_col(&a, ta + c.timing().t_rcd);
        let done_a = c.issue_read(&a, ca);
        let cb = c.earliest_col(&b, ca);
        let done_b = c.issue_read(&b, cb);
        assert!(done_b >= done_a + c.timing().t_bl, "bursts overlap: {done_a} {done_b}");
    }

    #[test]
    fn refresh_blocks_rank_and_closes_banks() {
        let mut c = ch();
        let a = addr(0, 0, 9);
        let t0 = c.earliest_act(&a, 0);
        c.issue_act(&a, t0);
        let until = c.issue_ref(0, t0 + 200);
        assert_eq!(until, t0 + 200 + c.timing().t_rfc);
        assert!(c.is_bank_closed(&a));
        assert!(c.rank_blocked(0, until - 1));
        assert!(!c.rank_blocked(0, until));
        let t1 = c.earliest_act(&a, t0 + 200);
        assert!(t1 >= until);
    }

    #[test]
    fn vrr_blocks_only_target_bank() {
        let mut c = ch();
        let a = addr(0, 0, 9);
        let other = addr(1, 0, 9);
        let until = c.issue_mitigation(&a, MitigationKind::Vrr, 1, 1000);
        assert_eq!(until, 1000 + c.timing().vrr_block(1));
        assert!(c.earliest_act(&a, 1000) >= until);
        assert!(c.earliest_act(&other, 1000) < until, "other banks unaffected");
    }

    #[test]
    fn drfm_blocks_same_bank_in_all_groups() {
        let mut c = ch();
        let a = addr(0, 2, 9);
        let same_num = addr(5, 2, 1);
        let diff_num = addr(5, 3, 1);
        let until = c.issue_mitigation(&a, MitigationKind::DrfmSb, 2, 500);
        assert_eq!(until, 500 + c.timing().t_drfm_sb);
        assert!(c.earliest_act(&same_num, 500) >= until);
        assert!(c.earliest_act(&diff_num, 500) < until);
    }

    #[test]
    fn reset_sweep_blocks_scope_for_millis() {
        let mut c = ch();
        let until = c.issue_reset_sweep(ResetScope::Rank { channel: 0, rank: 0 }, 0);
        let ms = sim_core::time::cycles_to_ms(until);
        assert!((2.0..3.0).contains(&ms), "sweep {ms} ms");
        assert!(c.rank_blocked(0, until - 1));
        assert!(!c.rank_blocked(1, 10), "other rank untouched");
        let (.., sweep_rows) = c.energy.counts();
        assert_eq!(sweep_rows, Geometry::paper_baseline().rows_per_rank());
    }

    #[test]
    fn scope_unblock_covers_every_rank_in_scope() {
        let mut c = ch();
        let until = c.issue_ref(1, 100);
        assert_eq!(c.scope_unblocked_at(ResetScope::Rank { channel: 0, rank: 0 }), 0);
        assert_eq!(c.scope_unblocked_at(ResetScope::Rank { channel: 0, rank: 1 }), until);
        assert_eq!(c.scope_unblocked_at(ResetScope::Channel { channel: 0 }), until);
    }

    #[test]
    fn rfm_is_shorter_than_drfm() {
        let mut c1 = ch();
        let mut c2 = ch();
        let a = addr(0, 0, 0);
        let u1 = c1.issue_mitigation(&a, MitigationKind::RfmSb, 1, 0);
        let u2 = c2.issue_mitigation(&a, MitigationKind::DrfmSb, 1, 0);
        assert!(u1 < u2);
    }
}
