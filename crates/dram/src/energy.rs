//! Event-based DRAM energy accounting (DRAMPower stand-in).
//!
//! Table IV of the paper reports *relative* energy overhead, which an
//! event-count model reproduces: each command type is charged a fixed energy
//! and background power accrues with wall-clock time. Constants are
//! representative DDR5 figures (order-of-magnitude correct); only ratios
//! matter for the reproduction.

use serde::{Deserialize, Serialize};
use sim_core::time::{cycles_to_ns, Cycle};

/// Energy charged per event, in nanojoules.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// One ACT+PRE pair.
    pub act_nj: f64,
    /// One read burst.
    pub rd_nj: f64,
    /// One write burst.
    pub wr_nj: f64,
    /// One all-bank REF command (per rank).
    pub ref_nj: f64,
    /// One victim row refreshed by a mitigation.
    pub victim_row_nj: f64,
    /// Background power per rank, in watts.
    pub background_w_per_rank: f64,
}

impl EnergyModel {
    /// Representative DDR5 x8 DIMM figures.
    pub fn ddr5() -> Self {
        Self {
            act_nj: 1.0,
            rd_nj: 1.4,
            wr_nj: 1.5,
            ref_nj: 140.0,
            victim_row_nj: 1.0,
            background_w_per_rank: 0.15,
        }
    }
}

impl Default for EnergyModel {
    fn default() -> Self {
        Self::ddr5()
    }
}

/// Accumulated energy for one channel.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct EnergyCounters {
    model: EnergyModel,
    acts: u64,
    reads: u64,
    writes: u64,
    refs: u64,
    victim_rows: u64,
    sweep_rows: u64,
}

impl EnergyCounters {
    /// Creates counters under the given model.
    pub fn new(model: EnergyModel) -> Self {
        Self { model, ..Default::default() }
    }

    /// Records an ACT (+ implied PRE).
    pub fn on_act(&mut self) {
        self.acts += 1;
    }

    /// Records a read burst.
    pub fn on_read(&mut self) {
        self.reads += 1;
    }

    /// Records a write burst.
    pub fn on_write(&mut self) {
        self.writes += 1;
    }

    /// Records an all-bank refresh.
    pub fn on_ref(&mut self) {
        self.refs += 1;
    }

    /// Records `n` victim rows refreshed by mitigation commands.
    pub fn on_victim_rows(&mut self, n: u64) {
        self.victim_rows += n;
    }

    /// Records `n` rows refreshed by a structure-reset sweep.
    pub fn on_sweep_rows(&mut self, n: u64) {
        self.sweep_rows += n;
    }

    /// Total dynamic + background energy in millijoules for a run of
    /// `elapsed` cycles over `ranks` ranks.
    pub fn total_mj(&self, elapsed: Cycle, ranks: u32) -> f64 {
        let m = &self.model;
        let dynamic_nj = self.acts as f64 * m.act_nj
            + self.reads as f64 * m.rd_nj
            + self.writes as f64 * m.wr_nj
            + self.refs as f64 * m.ref_nj
            + (self.victim_rows + self.sweep_rows) as f64 * m.victim_row_nj;
        let background_nj = m.background_w_per_rank * ranks as f64 * cycles_to_ns(elapsed);
        (dynamic_nj + background_nj) / 1.0e6
    }

    /// Energy spent on mitigation work only (victim rows + sweeps), mJ.
    pub fn mitigation_mj(&self) -> f64 {
        (self.victim_rows + self.sweep_rows) as f64 * self.model.victim_row_nj / 1.0e6
    }

    /// Event counts `(acts, reads, writes, refs, victim_rows, sweep_rows)`.
    pub fn counts(&self) -> (u64, u64, u64, u64, u64, u64) {
        (self.acts, self.reads, self.writes, self.refs, self.victim_rows, self.sweep_rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_accumulates() {
        let mut e = EnergyCounters::new(EnergyModel::ddr5());
        e.on_act();
        e.on_read();
        e.on_victim_rows(10);
        let (a, r, _, _, v, _) = e.counts();
        assert_eq!((a, r, v), (1, 1, 10));
        assert!(e.total_mj(0, 2) > 0.0);
    }

    #[test]
    fn background_dominates_idle_runs() {
        let e = EnergyCounters::new(EnergyModel::ddr5());
        // 32 ms idle, 2 ranks at 0.15 W each = 9.6 mJ.
        let total = e.total_mj(sim_core::time::ms_to_cycles(32.0), 2);
        assert!((total - 9.6).abs() < 0.1, "{total}");
    }

    #[test]
    fn mitigation_energy_separable() {
        let mut e = EnergyCounters::new(EnergyModel::ddr5());
        e.on_victim_rows(1_000_000);
        assert!((e.mitigation_mj() - 1.0).abs() < 1e-9);
    }
}
