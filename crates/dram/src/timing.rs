//! DDR5 timing parameters, in memory-bus cycles (3.2 GHz).

use serde::{Deserialize, Serialize};
use sim_core::time::{ms_to_cycles, ns_to_cycles, us_to_cycles, Cycle};

/// The timing constraints the model enforces.
///
/// Values follow Table I of the paper (tRCD-tRP-tCL 16-16-16 ns, tRC 48 ns,
/// tRFC 295 ns, tREFI 3.9 µs) plus standard DDR5-6400 values for the
/// parameters the table omits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimingParams {
    /// ACT-to-column-command delay.
    pub t_rcd: Cycle,
    /// PRE-to-ACT delay.
    pub t_rp: Cycle,
    /// Read CAS latency.
    pub t_cl: Cycle,
    /// Write CAS latency.
    pub t_cwl: Cycle,
    /// ACT-to-ACT delay, same bank (row cycle time).
    pub t_rc: Cycle,
    /// ACT-to-PRE minimum (row active time).
    pub t_ras: Cycle,
    /// ACT-to-ACT, different bank groups of the same rank.
    pub t_rrd_s: Cycle,
    /// ACT-to-ACT, same bank group.
    pub t_rrd_l: Cycle,
    /// Four-activation window per rank.
    pub t_faw: Cycle,
    /// Burst length on the data bus (BL16 at DDR = 8 bus cycles).
    pub t_bl: Cycle,
    /// Read-to-PRE delay.
    pub t_rtp: Cycle,
    /// Write recovery before PRE.
    pub t_wr: Cycle,
    /// Refresh cycle time (all-bank REF duration).
    pub t_rfc: Cycle,
    /// Average refresh command interval.
    pub t_refi: Cycle,
    /// Refresh window: every row refreshed once per tREFW.
    pub t_refw: Cycle,
    /// Time to internally refresh one victim row during a VRR (modelled as a
    /// full row cycle).
    pub t_victim_row: Cycle,
    /// Same-bank RFM blocking time (JEDEC: 190 ns).
    pub t_rfm_sb: Cycle,
    /// Same-bank DRFM blocking time (JEDEC: 240 ns, covers blast radius 2).
    pub t_drfm_sb: Cycle,
    /// Per-row time of a full structure-reset sweep (CoMeT/ABACUS early
    /// resets refresh all rows of a rank in ~2.4 ms: 64K rows x ~37.5 ns
    /// with all banks in parallel).
    pub t_sweep_per_row: Cycle,
}

impl TimingParams {
    /// DDR5-6400 (Table I).
    pub fn ddr5_6400() -> Self {
        Self {
            t_rcd: ns_to_cycles(16.0),
            t_rp: ns_to_cycles(16.0),
            t_cl: ns_to_cycles(16.0),
            t_cwl: ns_to_cycles(14.0),
            t_rc: ns_to_cycles(48.0),
            t_ras: ns_to_cycles(32.0),
            t_rrd_s: ns_to_cycles(2.5),
            t_rrd_l: ns_to_cycles(5.0),
            t_faw: ns_to_cycles(10.0),
            t_bl: 8,
            t_rtp: ns_to_cycles(7.5),
            t_wr: ns_to_cycles(30.0),
            t_rfc: ns_to_cycles(295.0),
            t_refi: us_to_cycles(3.9),
            t_refw: ms_to_cycles(32.0),
            t_victim_row: ns_to_cycles(48.0),
            t_rfm_sb: ns_to_cycles(190.0),
            t_drfm_sb: ns_to_cycles(240.0),
            t_sweep_per_row: ns_to_cycles(37.5),
        }
    }

    /// Blocking duration of one VRR command at the given blast radius
    /// (one victim row refreshed on each side per unit of blast radius).
    pub fn vrr_block(&self, blast_radius: u8) -> Cycle {
        2 * blast_radius as Cycle * self.t_victim_row
    }

    /// Duration of a full reset sweep over `rows_per_bank` rows (banks
    /// refresh in parallel, so the sweep length is per-bank row count).
    pub fn sweep_block(&self, rows_per_bank: u32) -> Cycle {
        rows_per_bank as Cycle * self.t_sweep_per_row
    }

    /// Maximum ACT rate per rank implied by tRRD_S, in activations per
    /// second (the paper quotes ~11.8M per rank per tREFW).
    pub fn max_acts_per_trefw(&self) -> u64 {
        self.t_refw / self.t_rrd_s
    }
}

impl Default for TimingParams {
    fn default() -> Self {
        Self::ddr5_6400()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_one_constants() {
        let t = TimingParams::ddr5_6400();
        assert_eq!(t.t_rc, 154); // 48 ns
        assert_eq!(t.t_rcd, 52); // 16 ns
        assert_eq!(t.t_rfc, 944); // 295 ns
        assert_eq!(t.t_refi, 12_480); // 3.9 us
        assert_eq!(t.t_refw, 102_400_000); // 32 ms
    }

    #[test]
    fn act_budget_matches_paper() {
        let t = TimingParams::ddr5_6400();
        // Paper: ~11.8M ACTs per rank within tREFW at tRRD_S spacing, and
        // ~616K per bank at tRC spacing.
        let per_rank = t.max_acts_per_trefw();
        assert!((11_000_000..=13_000_000).contains(&per_rank), "{per_rank}");
        let per_bank = t.t_refw / t.t_rc;
        assert!((600_000..=680_000).contains(&per_bank), "{per_bank}");
    }

    #[test]
    fn vrr_scales_with_blast_radius() {
        let t = TimingParams::ddr5_6400();
        assert_eq!(t.vrr_block(2), 2 * t.vrr_block(1));
    }

    #[test]
    fn sweep_takes_millis() {
        let t = TimingParams::ddr5_6400();
        let cycles = t.sweep_block(64 * 1024);
        let ms = sim_core::time::cycles_to_ms(cycles);
        assert!((2.0..3.0).contains(&ms), "sweep = {ms} ms");
    }
}
