//! Cycle-level DDR5 device model.
//!
//! This crate is the stand-in for the DRAM half of Ramulator: per-bank state
//! machines with DDR5-6400 timing constraints, rank-level ACT spacing
//! (tRRD/tFAW), the shared data bus, auto-refresh, and the mitigation
//! commands RowHammer defenses issue (victim-row refresh, same-bank RFM and
//! DRFM, and full structure-reset sweeps).
//!
//! The memory controller (`memctrl` crate) asks a [`DramChannel`] when a
//! command may issue ([`DramChannel::earliest_act`] and friends) and then
//! commits it ([`DramChannel::issue_act`], ...). Energy is accounted per
//! event in [`energy::EnergyCounters`].
//!
//! # Example
//!
//! ```
//! use dram::{DramChannel, TimingParams};
//! use sim_core::addr::{DramAddr, Geometry};
//!
//! let geom = Geometry::paper_baseline();
//! let mut ch = DramChannel::new(geom, TimingParams::ddr5_6400());
//! let a = DramAddr::new(0, 0, 0, 0, 42, 3);
//! let t = ch.earliest_act(&a, 0);
//! ch.issue_act(&a, t);
//! assert_eq!(ch.open_row(&a), Some(42));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod channel;
pub mod energy;
pub mod timing;

pub use channel::DramChannel;
pub use energy::EnergyCounters;
pub use timing::TimingParams;
